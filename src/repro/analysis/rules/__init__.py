"""duetlint rule registry and the base class every rule extends.

A rule is a small class with a ``code`` (``DET001``), a scope predicate
(:meth:`Rule.applies_to`), and a :meth:`Rule.check` that yields
:class:`~repro.analysis.findings.Finding` objects for one parsed module.
Rules register themselves with the :func:`register` decorator; the
engine picks up every registered rule by default, and ``--rule`` selects
a subset by code.  The catalogue with per-rule rationale lives in
``docs/linting.md``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding

__all__ = [
    "ProjectRule",
    "REGISTRY",
    "default_rules",
    "get_rules",
]


class Rule:
    """Base class for duetlint rules.

    Class attributes:
        code: unique rule identifier (``AAA000`` convention).
        title: one-line summary shown in ``--list-rules``.
        severity: default severity of this rule's findings.
        context_files: repo-relative files (beyond the linted module
            itself) whose contents feed this rule's verdicts -- the
            incremental cache invalidates cached module results when any
            of them change.
    """

    code: str = ""
    title: str = ""
    severity: str = "error"
    context_files: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on ``relpath`` (default: ``src/**``)."""
        return relpath.startswith("src/")

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Yield findings for ``module``; override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        """A finding at ``node`` carrying this rule's code and severity."""
        return module.finding(node, self.code, message, self.severity)


class ProjectRule(Rule):
    """Base class for whole-program rules.

    A project rule runs once per lint invocation over the
    :class:`~repro.analysis.project.ProgramModel` rather than once per
    file; :meth:`applies_to` filters which *findings* survive (by the
    path they are anchored at), not which files are visited.  Because
    their verdicts depend on the entire tree, project-rule results are
    cached against a whole-program fingerprint, never per module.
    """

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        """Project rules do no per-file work."""
        return iter(())

    def check_program(self, program, project: Project) -> Iterator[Finding]:
        """Yield findings over the whole program; override in subclasses.

        Args:
            program: the built :class:`~repro.analysis.project.ProgramModel`.
            project: the read-only tree view (for context files).
        """
        raise NotImplementedError
        yield  # pragma: no cover


#: code -> rule class, populated by :func:`register`.
REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to :data:`REGISTRY` by code."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def default_rules() -> list[Rule]:
    """One instance of every registered rule, sorted by code."""
    return [REGISTRY[code]() for code in sorted(REGISTRY)]


def get_rules(codes: Iterable[str] | None = None) -> list[Rule]:
    """Rule instances for ``codes`` (all rules when None).

    Raises:
        ValueError: on an unknown code, listing the known ones.
    """
    if codes is None:
        return default_rules()
    unknown = sorted(set(codes) - set(REGISTRY))
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(REGISTRY))}"
        )
    return [REGISTRY[code]() for code in sorted(set(codes))]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_target(module: ParsedModule, node: ast.AST) -> str | None:
    """Fully-qualified dotted path of a call target, import-resolved.

    ``np.random.rand`` becomes ``numpy.random.rand`` when the module did
    ``import numpy as np``; a bare ``rand`` becomes ``numpy.random.rand``
    after ``from numpy.random import rand``.  Returns the raw dotted
    chain when the head is not an import, or None when the target is not
    a simple Name/Attribute chain.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    imports = module.imports
    if head in imports.module_aliases:
        base = imports.module_aliases[head]
        return f"{base}.{rest}" if rest else base
    if head in imports.imported_names:
        base = imports.imported_names[head]
        return f"{base}.{rest}" if rest else base
    return dotted


# Import the rule modules for their registration side effects.  The
# whole-program rules (layering, seeddataflow, pricing, deadcode) import
# repro.analysis.project / .dataflow, which import this module back for
# the base classes -- keep them after the per-file rules so the bases
# above are defined by the time they load.
from repro.analysis.rules import (  # noqa: E402,F401
    configdoc,
    conventions,
    deadcode,
    determinism,
    dynamic,
    layering,
    numerics,
    parallelism,
    parity,
    pricing,
    reliability,
    seeddataflow,
)
