"""Determinism rules: DET001 (no ambient entropy), DET002 (seeds thread).

The repo's tier-1 contract is byte-identical output per seed (ROADMAP;
PR 2/3/4 all promise it).  That only holds if *no* code path consults
ambient entropy -- the process-global NumPy/stdlib RNG state or the wall
clock -- and if every ``seed`` parameter actually reaches an RNG instead
of dying unused while the callee silently falls back to a default.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register, resolve_target

#: numpy.random attributes that are part of seeded-Generator plumbing,
#: not the global RNG.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: wall-clock calls (fully resolved) banned outside the bench harness.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register
class GlobalEntropyRule(Rule):
    """DET001: no global RNG or wall clock inside ``src/repro``."""

    code = "DET001"
    title = "no global RNG / wall-clock reads in src/repro"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        in_bench = module.relpath.startswith("src/repro/bench/")
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_target(module, node.func)
            if target is None:
                continue
            if target.startswith("numpy.random."):
                attr = target.rsplit(".", 1)[1]
                if attr not in _NP_RANDOM_ALLOWED:
                    yield self.finding(
                        module,
                        node,
                        f"call to the global NumPy RNG ({dotted_name(node.func)}): "
                        "use a seeded numpy.random.Generator "
                        "(np.random.default_rng(seed)) threaded from the caller",
                    )
                continue
            head = (dotted_name(node.func) or "").split(".", 1)[0]
            head_is_import = (
                head in imports.module_aliases or head in imports.imported_names
            )
            if (
                head_is_import
                and (target == "random" or target.startswith("random."))
                and not target.startswith("random.Random")
                and target != "random.SystemRandom"
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to the global stdlib RNG ({dotted_name(node.func)}): "
                    "use random.Random(seed) or a numpy Generator threaded "
                    "from the caller",
                )
                continue
            if target in _CLOCK_CALLS:
                if in_bench and target.startswith("time."):
                    continue  # bench timing is the one legitimate clock user
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read ({dotted_name(node.func)}) breaks seeded "
                    "determinism: simulated time must come from the event "
                    "clock (only repro.bench may time wall clock)",
                )


def _is_stub_body(body: list[ast.stmt]) -> bool:
    """True for docstring-only / ``pass`` / ``...`` / ``raise`` bodies."""
    statements = list(body)
    if (
        statements
        and isinstance(statements[0], ast.Expr)
        and isinstance(statements[0].value, ast.Constant)
        and isinstance(statements[0].value.value, str)
    ):
        statements = statements[1:]
    if not statements:
        return True
    if len(statements) == 1:
        stmt = statements[0]
        if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Raise):
            return True
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            return True
    return False


def _is_abstract(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = dotted_name(decorator)
        if name and name.rsplit(".", 1)[-1] in {"abstractmethod", "overload"}:
            return True
    return False


@register
class DeadSeedRule(Rule):
    """DET002: a ``seed`` parameter must be used, not silently dropped."""

    code = "DET002"
    title = "every seed parameter must be threaded"

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            all_args = [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]
            if not any(a.arg == "seed" for a in all_args):
                continue
            if _is_stub_body(node.body) or _is_abstract(node):
                continue
            used = any(
                isinstance(inner, ast.Name) and inner.id == "seed"
                for stmt in node.body
                for inner in ast.walk(stmt)
            )
            if not used:
                yield self.finding(
                    module,
                    node,
                    f"'{node.name}' takes a 'seed' parameter but never reads "
                    "it: thread it into the RNG/callee or remove it (a dead "
                    "seed silently de-seeds callers)",
                )
