"""LAY001: the package layering DAG holds -- no upward imports, no cycles.

The repo's architecture is a strict ladder (see the layering-contract
table in ``docs/architecture.md``, which this rule keeps in sync with):
leaf utilities at the bottom, the CLI at the top, and every import
pointing downward or sideways.  ``repro.analysis`` sits at layer 0 on
purpose: the linter may depend on nothing it lints (only its layer-0
sibling ``repro.parallel``, for ``--jobs`` sharding), so a layering
violation can never break the tool that reports it.

Three finding shapes:

- an *upward* import (lower layer importing a higher one) at the import
  statement;
- a top-level package missing from the layer table (the contract must
  stay exhaustive as the tree grows);
- a drifted ``docs/architecture.md`` table (the prose contract and the
  enforced one must be the same table).

``if TYPE_CHECKING:`` imports are exempt -- they are erased at runtime.
Function-scope lazy imports are *not* exempt: lazy loading fixes import
order, not architecture.  Load-time cycles are separately reported via
:meth:`~repro.analysis.project.ProgramModel.import_cycles`.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.engine import Project
from repro.analysis.findings import Finding
from repro.analysis.project import ProgramModel
from repro.analysis.rules import ProjectRule, register

#: the enforced layer of each top-level unit under ``repro.``
#: (packages, plus the top-level modules ``cli``/``reporting``/
#: ``__main__``).  Lower layers must not import higher ones; equal
#: layers may import each other.  Mirrored by the table in
#: :data:`_DOC_FILE` -- LAY001 itself flags any drift between the two.
LAYERS: dict[str, int] = {
    "nn": 0,
    "quant": 0,
    "parallel": 0,
    "reporting": 0,
    "analysis": 0,
    "core": 1,
    "models": 2,
    "workloads": 3,
    "sim": 4,
    "dynamic": 5,
    "reliability": 6,
    "serving": 6,
    "baselines": 7,
    "experiments": 7,
    "bench": 8,
    "cli": 9,
    "__main__": 9,
}

#: packages the linter itself may reach into (its own layer).
_ANALYSIS_ALLOWED = {"analysis", "parallel"}

#: where the human-readable copy of the contract lives.
_DOC_FILE = "docs/architecture.md"

#: one table row: ``| 4 | `sim` |`` (packages backticked, comma-separated).
_DOC_ROW = re.compile(r"^\|\s*(\d+)\s*\|([^|]*)\|")


def _top_level(module_name: str) -> str | None:
    """``sim`` for ``repro.sim.batching``; None outside ``repro.``."""
    if module_name == "repro":
        return None
    if not module_name.startswith("repro."):
        return None
    return module_name.split(".")[1]


def doc_layer_table(text: str) -> dict[str, int]:
    """Parse the layering table out of ``docs/architecture.md`` text.

    Rows look like ``| 4 | `sim` |``; multiple packages per row are
    comma-separated.  Returns package -> layer (empty when no table).
    """
    layers: dict[str, int] = {}
    for line in text.splitlines():
        match = _DOC_ROW.match(line.strip())
        if match is None:
            continue
        layer = int(match.group(1))
        for name in re.findall(r"`([A-Za-z_][\w.]*)`", match.group(2)):
            layers[name.removeprefix("repro.")] = layer
    return layers


@register
class LayeringRule(ProjectRule):
    """LAY001: imports respect the package layering DAG."""

    code = "LAY001"
    title = "package imports follow the layering contract (no upward edges)"
    context_files = (_DOC_FILE,)

    def check_program(
        self, program: ProgramModel, project: Project
    ) -> Iterator[Finding]:
        # fixture trees without the real root package skip the checks
        # that only make sense against the exhaustive contract (doc sync
        # and unlisted packages); direction and cycles always run.
        is_real_tree = "src/repro/__init__.py" in program.by_path
        if is_real_tree:
            yield from self._check_doc(program, project)
        yield from self._check_edges(program, is_real_tree)
        yield from self._check_cycles(program)

    # -- the three finding shapes -----------------------------------------

    def _check_doc(self, program: ProgramModel, project: Project):
        root_init = program.by_path["src/repro/__init__.py"]
        doc_text = project.read_text(_DOC_FILE)
        documented = doc_layer_table(doc_text) if doc_text is not None else {}
        if documented == LAYERS:
            return
        if doc_text is None:
            message = (
                f"layering contract has no documented copy: {_DOC_FILE} "
                "is missing (LAY001 enforces the table it should carry)"
            )
        else:
            drift = sorted(
                set(documented.items()) ^ set(LAYERS.items())
            )
            message = (
                f"layering table in {_DOC_FILE} disagrees with the "
                f"enforced contract (drifted entries: "
                f"{', '.join(f'{name}={layer}' for name, layer in drift)}); "
                "update the doc table or the LAY001 layer map together"
            )
        yield self.finding(root_init.parsed, root_init.parsed.tree, message)

    def _check_edges(self, program: ProgramModel, is_real_tree: bool):
        for name in sorted(program.modules):
            info = program.modules[name]
            source_top = _top_level(info.name)
            if source_top is None:
                continue
            source_layer = LAYERS.get(source_top)
            if source_layer is None:
                if is_real_tree:
                    yield self.finding(
                        info.parsed,
                        info.parsed.tree,
                        f"package 'repro.{source_top}' is not in the "
                        f"layering contract: add it to the LAY001 layer "
                        f"map and the table in {_DOC_FILE}",
                    )
                continue
            for target, edge in program.internal_edges(info):
                target_top = _top_level(target.name)
                if target_top is None or target_top == source_top:
                    continue
                if source_top == "analysis" and target_top not in _ANALYSIS_ALLOWED:
                    yield self._edge_finding(
                        info, edge, source_top, target_top,
                        "repro.analysis must not import the packages it "
                        "lints (only its layer-0 siblings)",
                    )
                    continue
                target_layer = LAYERS.get(target_top)
                if target_layer is None:
                    continue  # reported once at the unlisted package itself
                if target_layer > source_layer:
                    yield self._edge_finding(
                        info, edge, source_top, target_top,
                        f"layer {source_layer} must not import layer "
                        f"{target_layer}",
                    )

    def _check_cycles(self, program: ProgramModel):
        for cycle in program.import_cycles():
            members = [m for m in cycle if m in program.modules]
            if not members:
                continue
            anchor = program.modules[cycle[0]]
            loop = " -> ".join(cycle + [cycle[0]])
            yield self.finding(
                anchor.parsed,
                anchor.parsed.tree,
                f"load-time import cycle {loop}: break it by moving the "
                "shared code down a layer or using a function-scope lazy "
                "import at the cycle's least-hot edge",
            )

    def _edge_finding(self, info, edge, source_top, target_top, detail):
        finding = info.parsed.finding(
            _Anchor(edge.line),
            self.code,
            f"upward import: repro.{source_top} -> repro.{target_top} "
            f"({detail}; contract: {_DOC_FILE})",
            self.severity,
        )
        return finding


class _Anchor:
    """Minimal node stand-in carrying a line for finding construction."""

    def __init__(self, lineno: int):
        self.lineno = lineno
        self.col_offset = 0
