"""REL003: recovery code must be bounded, seeded, and event-clocked.

The fault-tolerance tier (``serving/``, ``reliability/``) makes three
promises the type system cannot enforce: retry/polling loops terminate
(a retry budget, not ``while True`` + hope), waiting happens on the
simulated event clock (a wall-clock ``sleep`` would freeze a
discrete-event simulator and desynchronise real deployments from the
model), and backoff jitter comes from an *injected seeded* RNG so a
retry storm replays byte-identically under one seed.  DET001 already
bans reading the wall clock; this rule bans stalling on it, plus the
two recovery-specific hazards.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register, resolve_target

#: blocking wall-clock waits, banned everywhere in src/repro.
_SLEEP_CALLS = {"time.sleep", "asyncio.sleep"}

#: directories holding recovery machinery, where the loop/RNG checks run.
_RECOVERY_PREFIXES = ("src/repro/serving/", "src/repro/reliability/")


def _escapes(statements: list[ast.stmt], nested: bool) -> bool:
    """Whether a loop body can exit: a ``break`` bound to this loop, or a
    ``return``/``raise`` anywhere outside nested function definitions."""
    for stmt in statements:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(stmt, ast.Break) and not nested:
            return True
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return True
        child_nested = nested or isinstance(
            stmt, (ast.While, ast.For, ast.AsyncFor)
        )
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if block and _escapes(block, child_nested):
                return True
        for handler in getattr(stmt, "handlers", None) or ():
            if _escapes(handler.body, child_nested):
                return True
        for case in getattr(stmt, "cases", None) or ():
            if _escapes(case.body, child_nested):
                return True
    return False


@register
class RecoveryHygieneRule(Rule):
    """REL003: bounded retries, event-clock waits, seeded jitter."""

    code = "REL003"
    title = "recovery loops bounded, no wall-clock sleeps, jitter RNGs seeded"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        in_recovery = module.relpath.startswith(_RECOVERY_PREFIXES)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = resolve_target(module, node.func)
                if target in _SLEEP_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"wall-clock sleep ({dotted_name(node.func)}): waits "
                        "must be scheduled on the simulated event clock "
                        "(push a timed event), never block the process",
                    )
                elif (
                    in_recovery
                    and target == "numpy.random.default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        module,
                        node,
                        "unseeded default_rng() in recovery code: backoff/"
                        "hedge jitter must come from a seeded Generator "
                        "injected by the caller, or retry storms stop "
                        "replaying byte-identically per seed",
                    )
            elif (
                in_recovery
                and isinstance(node, ast.While)
                and isinstance(node.test, ast.Constant)
                and bool(node.test.value)
                and not _escapes(node.body, nested=False)
            ):
                yield self.finding(
                    module,
                    node,
                    "unbounded retry/polling loop: a constant-true 'while' "
                    "with no break/return/raise never terminates -- bound it "
                    "by the retry budget (e.g. 'while tries < "
                    "policy.max_attempts')",
                )
