"""SEED001: dataflow-tracked worker-RNG provenance.

PAR002 is the fast pre-pass: it pattern-matches RNG constructors inside
modules that visibly import ``multiprocessing``/``concurrent.futures``.
SEED001 is the whole-program pass behind it, built on
:mod:`repro.analysis.dataflow`: it tracks where generators *come from*,
so an unseeded generator smuggled through an alias or a helper function
in another module -- invisible to PAR002 by construction -- is still a
finding in the module where it reaches parallel or serving code.

Scope: a module is *worker-adjacent* when it imports a parallel
execution primitive, imports ``repro.parallel`` (the campaign engine),
or lives under ``src/repro/serving/`` (the serving simulators seed
per-worker streams).  Within scope, any expression whose provenance is
definitely :data:`~repro.analysis.dataflow.TAINTED` -- an unseeded
generator, however indirectly constructed -- is reported.  UNKNOWN
provenance stays silent: SEED001 only speaks when it can prove the
entropy leak.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.dataflow import RngDataflow
from repro.analysis.engine import Project
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, ProgramModel
from repro.analysis.rules import ProjectRule, register

#: external modules whose import marks a file as worker-adjacent.
_PARALLEL_MODULES = ("multiprocessing", "concurrent.futures")

#: internal package whose import marks a file as worker-adjacent.
_CAMPAIGN_PACKAGE = "repro.parallel"

#: path prefix always in scope (serving simulators spawn worker streams).
_SERVING_PREFIX = "src/repro/serving/"


def _worker_adjacent(info: ModuleInfo) -> bool:
    """Whether SEED001 watches ``info`` (see module docstring)."""
    if info.relpath.startswith(_SERVING_PREFIX):
        return True
    for edge in info.edges:
        if edge.type_checking:
            continue
        if any(
            edge.target == mod or edge.target.startswith(mod + ".")
            for mod in _PARALLEL_MODULES
        ):
            return True
        if edge.target == _CAMPAIGN_PACKAGE or edge.target.startswith(
            _CAMPAIGN_PACKAGE + "."
        ):
            return True
    return False


@register
class SeedDataflowRule(ProjectRule):
    """SEED001: worker-reaching RNGs provably descend from spawn lineage."""

    code = "SEED001"
    title = "worker-adjacent RNGs must not carry OS-entropy provenance"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("src/", "tools/"))

    def check_program(
        self, program: ProgramModel, project: Project
    ) -> Iterator[Finding]:
        in_scope = [
            program.modules[name]
            for name in sorted(program.modules)
            if self.applies_to(program.modules[name].relpath)
            and _worker_adjacent(program.modules[name])
        ]
        if not in_scope:
            return
        flow = RngDataflow(program)
        flow.summarize()
        for info in in_scope:
            for site in flow.analyze(info):
                yield info.parsed.finding(
                    _Site(site.line, site.col),
                    self.code,
                    f"worker-adjacent module binds a tainted RNG: "
                    f"{site.reason}; derive it from "
                    "numpy.random.SeedSequence.spawn (e.g. "
                    "repro.parallel.spawn_task_seeds) so shards replay "
                    "identically for any --jobs value",
                    self.severity,
                )


class _Site:
    """Line/col carrier for finding construction at a dataflow site."""

    def __init__(self, lineno: int, col_offset: int):
        self.lineno = lineno
        self.col_offset = col_offset
