"""PAR001: every fast-path kernel has a slow-path oracle and a test.

PR 3 established the contract that ``fast_path=True`` is *exact*: every
vectorized kernel dispatched under a ``config.fast_path`` check must
keep its per-event reference implementation as the oracle, and the
equivalence suite ``tests/sim/test_fast_path.py`` must exercise the
pair.  This rule keeps that contract from rotting: a new ``*_fast`` /
``*_cached`` kernel without a resolvable slow counterpart, or one whose
dispatcher never shows up in the equivalence suite, is a finding.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register

#: the simulator modules whose fast-path dispatches are checked.
_SIM_FILES = {
    "src/repro/sim/executor.py",
    "src/repro/sim/speculator.py",
    "src/repro/sim/pe.py",
    "src/repro/sim/pipeline.py",
    "src/repro/sim/functional.py",
}

#: the equivalence suite every dispatched kernel must be referenced by.
_TEST_FILE = "tests/sim/test_fast_path.py"

_FAST_SUFFIXES = ("_fast", "_cached")


def _mentions_fast_path(test: ast.expr) -> bool:
    return any(
        isinstance(node, ast.Attribute) and node.attr == "fast_path"
        for node in ast.walk(test)
    )


def _fast_callees(nodes: list[ast.stmt]) -> list[tuple[ast.Call, str]]:
    """(call node, callee name) for ``*_fast``/``*_cached`` calls."""
    out = []
    for stmt in nodes:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            last = name.rsplit(".", 1)[-1]
            if last.endswith(_FAST_SUFFIXES):
                out.append((node, last))
    return out


def _counterpart_candidates(fast_name: str) -> set[str]:
    base = fast_name
    for suffix in _FAST_SUFFIXES:
        if base.endswith(suffix):
            base = base[: -len(suffix)]
            break
    bare = base.lstrip("_")
    return {
        base,
        bare,
        f"_{bare}",
        f"{base}_reference",
        f"{bare}_reference",
        f"_{bare}_reference",
        f"{base}_slow",
        f"{bare}_slow",
    } - {""}


def _word_in(text: str, word: str) -> bool:
    return re.search(rf"\b{re.escape(word)}\b", text) is not None


class _DispatchCollector(ast.NodeVisitor):
    """Collect ``if ...fast_path...`` dispatches with their enclosing def."""

    def __init__(self):
        self.stack: list[str] = []
        self.dispatches: list[tuple[ast.If, str | None]] = []

    def visit_FunctionDef(self, node):
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_If(self, node: ast.If):
        if _mentions_fast_path(node.test):
            self.dispatches.append((node, self.stack[-1] if self.stack else None))
        self.generic_visit(node)


@register
class FastSlowParityRule(Rule):
    """PAR001: fast kernels need a slow counterpart and test coverage."""

    code = "PAR001"
    context_files = (_TEST_FILE,)
    title = "fast-path kernels keep a slow-path oracle and an equivalence test"

    def applies_to(self, relpath: str) -> bool:
        return relpath in _SIM_FILES

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        defined = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        imported = set(module.imports.imported_names)
        resolvable = defined | imported
        test_text = project.read_text(_TEST_FILE)

        collector = _DispatchCollector()
        collector.visit(module.tree)
        for if_node, enclosing in collector.dispatches:
            kernels = _fast_callees(if_node.body)
            if not kernels:
                continue  # memo guard or inline fast path: nothing dispatched
            for call, fast_name in kernels:
                candidates = _counterpart_candidates(fast_name)
                counterparts = (candidates - {fast_name}) & resolvable
                if not counterparts:
                    yield self.finding(
                        module,
                        call,
                        f"fast-path kernel '{fast_name}' has no slow-path "
                        "counterpart in this module (expected one of "
                        f"{', '.join(sorted(candidates - {fast_name}))}): the "
                        "reference implementation is the oracle and must be "
                        "kept",
                    )
                if test_text is None:
                    yield self.finding(
                        module,
                        call,
                        f"fast-path kernel '{fast_name}' cannot be "
                        f"equivalence-checked: {_TEST_FILE} does not exist",
                    )
                    continue
                searched = {fast_name, *candidates}
                if enclosing:
                    searched.add(enclosing)
                if not any(_word_in(test_text, name) for name in searched):
                    anchor = enclosing or fast_name
                    yield self.finding(
                        module,
                        call,
                        f"fast-path dispatch in '{anchor}' is not referenced "
                        f"by {_TEST_FILE}: add an equivalence test comparing "
                        f"'{fast_name}' against its slow-path oracle",
                    )
