"""PRC001: every serving-reachable executor variant is priced and tested.

DYN001 pins the ``EXIT_REGISTRY`` keys to the cost model and the parity
suite by word-mention inside three known files.  PRC001 is its
call-graph generalization: it discovers every *executor variant* -- a
public class named ``*Executor``, plus ``ShardPlan`` -- defined anywhere
under ``src/repro/``, keeps the ones the serving tier can actually
reach through the import graph, and demands two properties of each:

- a **pricing path**: the defining module's import closure must land in
  the ``sim/`` cost models (:data:`_COST_MODULES`) -- an executor that
  cannot reach the pipeline cost model serves unpriced work;
- a **parity reference**: the class name is word-mentioned somewhere
  under ``tests/`` -- an executor no test names has no parity anchor
  pinning it to the static model.

Lazy function-scope imports count for both reachability and pricing
(they are real runtime paths); ``TYPE_CHECKING`` imports count for
neither.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import Project
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, ProgramModel
from repro.analysis.rules import ProjectRule, register

#: modules that constitute "being priced": the dataflow pipelines'
#: cycle/energy models.  A pricing path must reach one of them.
_COST_MODULES = ("repro.sim.pipeline", "repro.dynamic.costmodel")

#: the package whose reachability defines the serving surface.
_SERVING_PACKAGE = "repro.serving"

#: class-name shapes that make a public class an executor variant.
_VARIANT = re.compile(r"^(?:[A-Za-z0-9]*Executor|ShardPlan)$")


def _variant_classes(info: ModuleInfo) -> list[ast.ClassDef]:
    """Public executor-variant classes defined at ``info``'s top level."""
    return [
        node
        for node in info.parsed.tree.body
        if isinstance(node, ast.ClassDef)
        and not node.name.startswith("_")
        and _VARIANT.match(node.name)
    ]


def _forward_closure(program: ProgramModel, roots: list[str]) -> set[str]:
    """Module names reachable from ``roots`` over runtime import edges."""
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        info = program.modules.get(frontier.pop())
        if info is None:
            continue
        for target, _ in program.internal_edges(info):
            if target.name not in seen:
                seen.add(target.name)
                frontier.append(target.name)
    return seen


@register
class ExecutorPricingRule(ProjectRule):
    """PRC001: serving-reachable executors have pricing + parity anchors."""

    code = "PRC001"
    title = "serving-reachable executor variants are priced and parity-tested"

    def check_program(
        self, program: ProgramModel, project: Project
    ) -> Iterator[Finding]:
        serving_roots = [
            name
            for name in program.modules
            if name == _SERVING_PACKAGE
            or name.startswith(_SERVING_PACKAGE + ".")
        ]
        if not serving_roots:
            return  # no serving tier in this tree, nothing to price
        serving_reach = _forward_closure(program, serving_roots)
        test_sources = [
            program.modules[name].parsed.source
            for name in sorted(program.modules)
            if program.modules[name].relpath.startswith("tests/")
        ]
        for name in sorted(program.modules):
            info = program.modules[name]
            if not info.relpath.startswith("src/repro/"):
                continue
            variants = _variant_classes(info)
            if not variants or info.name not in serving_reach:
                continue
            priced = any(
                cost in _forward_closure(program, [info.name])
                for cost in _COST_MODULES
                if cost in program.modules
            )
            for node in variants:
                if not priced:
                    yield info.parsed.finding(
                        node,
                        self.code,
                        f"executor variant '{node.name}' is reachable from "
                        f"{_SERVING_PACKAGE} but its module has no pricing "
                        f"path into the sim cost models "
                        f"({' or '.join(_COST_MODULES)}): serving it would "
                        "run unpriced work",
                        self.severity,
                    )
                word = re.compile(rf"\b{re.escape(node.name)}\b")
                if not any(word.search(text) for text in test_sources):
                    yield info.parsed.finding(
                        node,
                        self.code,
                        f"executor variant '{node.name}' is reachable from "
                        f"{_SERVING_PACKAGE} but no test under tests/ "
                        "references it: add a parity test pinning it to "
                        "the static execution path",
                        self.severity,
                    )
