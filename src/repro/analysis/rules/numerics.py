"""NUM001: no ``==``/``!=`` on floating-point values outside tests.

The fast-path/slow-path equivalence story works because integer
counters are compared exactly and float quantities go through
``allclose``-style helpers (see ``sim/functional.py``).  Exact equality
on floats in library code is almost always a latent nondeterminism bug:
it can flip with BLAS version, summation order, or fast-path batching.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register, resolve_target

#: call targets (last dotted component) whose results are floating point.
_FLOAT_RETURNING = {
    "to_float",
    "dequantize",
    "float",
    "mean",
    "std",
    "var",
    "linspace",
    "exp",
    "log",
    "log2",
    "log10",
    "sqrt",
}


def _is_floatish(module: ParsedModule, node: ast.expr) -> bool:
    """Heuristic: does ``node`` evaluate to a float (scalar or array)?

    A literal ``0.0`` is exempt: exact zero is representable, and
    ``x == 0.0`` is the established idiom for "exactly zero" sentinel
    checks (unset fractions, pruned weights, underflowed scales).  The
    hazard NUM001 targets is equality between *computed* floats.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float) and node.value != 0.0
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(module, node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division always yields float
        return _is_floatish(module, node.left) or _is_floatish(module, node.right)
    if isinstance(node, ast.Call):
        target = resolve_target(module, node.func)
        if target is None:
            return False
        last = target.rsplit(".", 1)[-1]
        if last in _FLOAT_RETURNING:
            return True
        if last.startswith(("float", "double")):  # float(), np.float64(), ...
            return True
        if last == "astype" and node.args:
            arg = node.args[0]
            arg_target = resolve_target(module, arg) or ""
            arg_name = (
                arg.value
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                else arg_target.rsplit(".", 1)[-1]
            )
            return isinstance(arg_name, str) and "float" in arg_name
    return False


@register
class FloatEqualityRule(Rule):
    """NUM001: float ``==``/``!=`` must go through allclose/ULP helpers."""

    code = "NUM001"
    title = "no exact equality on floats outside tests"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/") and "/tests/" not in relpath

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_floatish(module, operand) for operand in operands):
                yield self.finding(
                    module,
                    node,
                    "exact ==/!= on a floating-point value: use "
                    "numpy.allclose / math.isclose (or compare the integer "
                    "payloads) -- float equality flips with summation order",
                )
