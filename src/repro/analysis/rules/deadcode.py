"""DEAD001: every public package export is referenced from outside.

A package ``__init__.py`` is the package's public API surface: its
``__all__`` (or, lacking one, its top-level re-export imports) promises
those names to the rest of the repo.  An export nobody outside the
package references is API rot -- it inflates the surface the layering
and pricing contracts must police, and it silently breaks without any
test noticing.  DEAD001 walks the whole program (``src/``, ``tools/``,
``tests/``, ``benchmarks/``, ``examples/``) and flags exports with zero
cross-module references.

A reference is any of:

- ``from pkg import name`` (or ``import *``) in a module outside the
  package's subtree;
- an attribute use resolving to ``pkg.name`` after ``import pkg`` or an
  aliased import;
- for exports naming *submodules*, any import of ``pkg.name`` or a
  deeper path.

Uses from inside the package's own subtree do not count -- siblings
import the defining module directly, so they cannot justify keeping the
re-export alive.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Project
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, ProgramModel
from repro.analysis.rules import ProjectRule, dotted_name, register, resolve_target

import ast


def _exports(info: ModuleInfo) -> list[tuple[str, int]]:
    """Public ``(name, line)`` exports promised by a package __init__."""
    if info.explicit_all is not None:
        return [
            (name, info.all_line)
            for name in info.explicit_all
            if not name.startswith("_")
        ]
    return sorted(
        (name, line)
        for name, (kind, line) in info.symbols.items()
        if kind == "import" and not name.startswith("_")
    )


def _attribute_refs(info: ModuleInfo) -> set[str]:
    """Absolute dotted paths of every attribute chain in ``info``."""
    refs: set[str] = set()
    for node in ast.walk(info.parsed.tree):
        if isinstance(node, ast.Attribute):
            if dotted_name(node) is None:
                continue
            resolved = resolve_target(info.parsed, node)
            if resolved is not None:
                refs.add(resolved)
    return refs


@register
class DeadExportRule(ProjectRule):
    """DEAD001: package exports must have cross-module references."""

    code = "DEAD001"
    title = "public __init__ exports are referenced outside their package"

    def check_program(
        self, program: ProgramModel, project: Project
    ) -> Iterator[Finding]:
        packages = [
            program.modules[name]
            for name in sorted(program.modules)
            if program.modules[name].is_package
            and program.modules[name].relpath.startswith("src/")
        ]
        if not packages:
            return
        attribute_refs: dict[str, set[str]] = {
            name: _attribute_refs(program.modules[name])
            for name in program.modules
        }
        for package in packages:
            yield from self._check_package(program, package, attribute_refs)

    def _check_package(
        self,
        program: ProgramModel,
        package: ModuleInfo,
        attribute_refs: dict[str, set[str]],
    ) -> Iterator[Finding]:
        subtree = package.name + "."
        outside = [
            info
            for name, info in program.modules.items()
            if name != package.name and not name.startswith(subtree)
        ]
        for name, line in _exports(package):
            if self._referenced(program, package, name, outside, attribute_refs):
                continue
            yield package.parsed.finding(
                _Anchor(line),
                self.code,
                f"public export '{name}' of {package.name} has no "
                "cross-module references anywhere under src/, tools/, "
                "tests/, benchmarks/ or examples/: prune it from the "
                "package surface (or add the caller that was supposed "
                "to exist)",
                self.severity,
            )

    def _referenced(
        self,
        program: ProgramModel,
        package: ModuleInfo,
        name: str,
        outside: list[ModuleInfo],
        attribute_refs: dict[str, set[str]],
    ) -> bool:
        dotted = f"{package.name}.{name}"
        is_submodule = dotted in program.modules
        for info in outside:
            for edge in info.edges:
                if edge.target == package.name and (
                    name in edge.names or "*" in edge.names
                ):
                    return True
                if is_submodule and (
                    edge.target == dotted
                    or edge.target.startswith(dotted + ".")
                ):
                    return True
            if dotted in attribute_refs[info.name]:
                return True
        return False


class _Anchor:
    """Line carrier for findings anchored at an export's source line."""

    def __init__(self, lineno: int):
        self.lineno = lineno
        self.col_offset = 0
