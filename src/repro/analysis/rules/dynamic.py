"""DYN001: every registered exit head is priced and parity-tested.

The selective-execution subsystem (PR 9) keeps three artifacts in
lock-step: the early-exit registry ``EXIT_REGISTRY`` in
``src/repro/dynamic/exits.py``, the per-backbone quality pricing
``EXIT_PRICING`` in ``src/repro/dynamic/costmodel.py``, and the
degeneration suite ``tests/dynamic/test_parity.py`` that pins the
full-depth exit bit-identical to the static model.  A backbone
registered in one but missing from the others silently serves unpriced
(or untested) exits -- exactly the rot PAR001 guards against on the
fast/slow axis.  This rule is the registry's counterpart: every string
key of the ``EXIT_REGISTRY`` dict literal must be word-mentioned in the
cost model and in the parity suite.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

#: the module owning the early-exit registry.
_REGISTRY_FILE = "src/repro/dynamic/exits.py"

#: the registry's module-level name.
_REGISTRY_NAME = "EXIT_REGISTRY"

#: where every registered backbone must carry a quality price.
_PRICING_FILE = "src/repro/dynamic/costmodel.py"

#: the degeneration suite every registered backbone must appear in.
_TEST_FILE = "tests/dynamic/test_parity.py"


def _word_in(text: str, word: str) -> bool:
    return re.search(rf"\b{re.escape(word)}\b", text) is not None


def _registry_keys(tree: ast.Module) -> list[tuple[ast.expr, str]]:
    """(key node, key string) of the EXIT_REGISTRY dict literal."""
    for node in tree.body:
        if isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            continue
        named = any(
            isinstance(t, ast.Name) and t.id == _REGISTRY_NAME
            for t in targets
        )
        if not named or not isinstance(value, ast.Dict):
            continue
        return [
            (key, key.value)
            for key in value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        ]
    return []


@register
class ExitPricingParityRule(Rule):
    """DYN001: registered exit heads need pricing and parity coverage."""

    code = "DYN001"
    context_files = (_PRICING_FILE, _TEST_FILE)
    title = "registered early-exit backbones are priced and parity-tested"

    def applies_to(self, relpath: str) -> bool:
        return relpath == _REGISTRY_FILE

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        keys = _registry_keys(module.tree)
        pricing_text = project.read_text(_PRICING_FILE)
        test_text = project.read_text(_TEST_FILE)
        for node, backbone in keys:
            if pricing_text is None:
                yield self.finding(
                    module,
                    node,
                    f"early-exit backbone '{backbone}' cannot be priced: "
                    f"{_PRICING_FILE} does not exist",
                )
            elif not _word_in(pricing_text, backbone):
                yield self.finding(
                    module,
                    node,
                    f"early-exit backbone '{backbone}' has no priced entry "
                    f"in {_PRICING_FILE}: add it to EXIT_PRICING so its "
                    "exits carry a quality cost",
                )
            if test_text is None:
                yield self.finding(
                    module,
                    node,
                    f"early-exit backbone '{backbone}' cannot be "
                    f"parity-checked: {_TEST_FILE} does not exist",
                )
            elif not _word_in(test_text, backbone):
                yield self.finding(
                    module,
                    node,
                    f"early-exit backbone '{backbone}' is not referenced by "
                    f"{_TEST_FILE}: add a degeneration test pinning its "
                    "full-depth exit bit-identical to the static model",
                )
