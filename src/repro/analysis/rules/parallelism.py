"""Parallelism rule: PAR002 (worker RNGs derive from SeedSequence.spawn).

The parallel campaign engine's determinism contract (``--jobs 1`` and
``--jobs N`` produce byte-identical documents) only holds when every
worker-side RNG descends from the root seed through
``numpy.random.SeedSequence.spawn`` -- the one construction NumPy
guarantees gives statistically independent, index-stable child streams.
The two classic mistakes both pass tests on one machine and then diverge
across worker counts:

- an *unseeded* ``default_rng()`` in a worker draws from OS entropy, so
  every run differs;
- *parent-seed reuse* (``default_rng(seed)`` in each worker) makes all
  workers draw the identical stream, silently correlating shards.

PAR002 therefore inspects every module that imports
``concurrent.futures`` or ``multiprocessing`` and flags unseeded RNG
construction, plus seeded RNG construction in modules that never touch
``SeedSequence(...).spawn(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register, resolve_target

#: top-level modules whose import marks a file as parallel code.
_PARALLEL_MODULES = ("multiprocessing", "concurrent.futures")

#: resolved call targets that construct an RNG stream.
_RNG_CONSTRUCTORS = {"numpy.random.default_rng", "numpy.random.Generator"}


def _imports_parallelism(tree: ast.Module) -> ast.stmt | None:
    """The first import statement pulling in a parallel-execution module.

    Scans the raw ``ast.Import`` / ``ast.ImportFrom`` nodes rather than
    :class:`~repro.analysis.engine.ModuleImports`, which collapses
    dotted paths (``import concurrent.futures`` binds ``concurrent``).
    """

    def matches(name: str) -> bool:
        return any(
            name == mod or name.startswith(mod + ".")
            for mod in _PARALLEL_MODULES
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(matches(alias.name) for alias in node.names):
                return node
        elif isinstance(node, ast.ImportFrom):
            if node.module and matches(node.module):
                return node
    return None


@register
class WorkerSeedRule(Rule):
    """PAR002: parallel modules derive worker RNGs via SeedSequence.spawn."""

    code = "PAR002"
    title = "worker RNGs must descend from SeedSequence.spawn"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/")

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        import_node = _imports_parallelism(module.tree)
        if import_node is None:
            return

        seeded_rng_calls: list[ast.Call] = []
        has_seed_sequence = False
        has_spawn_call = False
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "spawn":
                has_spawn_call = True
            target = resolve_target(module, func)
            if target is None:
                continue
            if target.endswith(".SeedSequence") or target == "SeedSequence":
                has_seed_sequence = True
            elif target in _RNG_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"unseeded {dotted_name(func)}() in a module that "
                        "spawns workers draws OS entropy: seed it from a "
                        "SeedSequence.spawn child so shards replay "
                        "identically for any --jobs value",
                    )
                else:
                    seeded_rng_calls.append(node)

        if seeded_rng_calls and not (has_seed_sequence and has_spawn_call):
            yield self.finding(
                module,
                import_node,
                "module spawns workers and constructs RNGs but never "
                "derives them via numpy.random.SeedSequence(...).spawn(...): "
                "reusing one parent seed across workers correlates their "
                "streams (see repro.parallel.spawn_task_seeds)",
            )
