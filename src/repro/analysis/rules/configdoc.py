"""CFG001: every ``DuetConfig`` field is validated and documented.

``DuetConfig`` is the single knob surface of the simulator; an
unvalidated field means a typo'd configuration silently produces wrong
cycle counts (the power-of-two and positivity checks exist for exactly
that reason), and an undocumented field means users discover knobs by
reading the dataclass.  The rule cross-checks the dataclass fields in
``src/repro/sim/config.py`` against its ``__post_init__`` validation and
the field reference in ``docs/api.md``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register

_CONFIG_FILE = "src/repro/sim/config.py"
_DOC_FILE = "docs/api.md"
_CLASS_NAME = "DuetConfig"


def _field_names(cls: ast.ClassDef) -> list[tuple[str, ast.AnnAssign]]:
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append((stmt.target.id, stmt))
    return fields


def _is_bool_field(node: ast.AnnAssign) -> bool:
    return isinstance(node.annotation, ast.Name) and node.annotation.id == "bool"


def _post_init_mentions(cls: ast.ClassDef) -> set[str]:
    """Identifiers referenced inside ``__post_init__``: names, ``self.X``
    attributes, and string constants (the getattr-over-tuple idiom)."""
    mentioned: set[str] = set()
    for stmt in cls.body:
        if not (
            isinstance(stmt, ast.FunctionDef) and stmt.name == "__post_init__"
        ):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                mentioned.add(node.id)
            elif isinstance(node, ast.Attribute):
                mentioned.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                mentioned.add(node.value)
    return mentioned


@register
class ConfigFieldRule(Rule):
    """CFG001: DuetConfig fields are validated and documented."""

    code = "CFG001"
    context_files = (_DOC_FILE,)
    title = "DuetConfig fields validated in __post_init__, listed in docs/api.md"

    def applies_to(self, relpath: str) -> bool:
        return relpath == _CONFIG_FILE

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        cls = next(
            (
                node
                for node in module.tree.body
                if isinstance(node, ast.ClassDef) and node.name == _CLASS_NAME
            ),
            None,
        )
        if cls is None:
            return
        doc_text = project.read_text(_DOC_FILE)
        validated = _post_init_mentions(cls)
        for name, field in _field_names(cls):
            if not _is_bool_field(field) and name not in validated:
                yield self.finding(
                    module,
                    field,
                    f"{_CLASS_NAME}.{name} is never checked in __post_init__: "
                    "validate it (range/divisibility) so a typo'd config "
                    "fails fast instead of producing wrong cycle counts",
                )
            if doc_text is None:
                yield self.finding(
                    module,
                    field,
                    f"{_CLASS_NAME}.{name} cannot be doc-checked: "
                    f"{_DOC_FILE} does not exist",
                )
            elif not re.search(rf"\b{re.escape(name)}\b", doc_text):
                yield self.finding(
                    module,
                    field,
                    f"{_CLASS_NAME}.{name} is not mentioned in {_DOC_FILE}: "
                    "add it to the hardware-knob reference",
                )
