"""Convention rules: CLI001 (exit/stderr discipline), EXC001 (no
swallowed exceptions), SCH001 (schema strings declared and validated).

These encode the repo-wide conventions documented in ``docs/linting.md``:
CLI commands report usage errors as ``error: <msg>`` on stderr with exit
status 2 (via ``CliError``), never ad-hoc ``sys.exit("...")`` or
``print``; exceptions are never silently swallowed in library code; and
every versioned JSON document declares its ``name/major`` schema as a
named constant and validates it at the read/write boundary
(:mod:`repro.analysis.schema`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ParsedModule, Project
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register, resolve_target
from repro.analysis.schema import SCHEMA_PATTERN


@register
class CliConventionRule(Rule):
    """CLI001: CLI modules use CliError / the err stream, not print/exit."""

    code = "CLI001"
    title = "CLI modules use the shared exit/stderr helpers"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/") and relpath.endswith("/cli.py")

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_target(module, node.func)
            if target == "print":
                yield self.finding(
                    module,
                    node,
                    "print() in a CLI module: write tables to the injected "
                    "'out' stream and errors to 'err' (print bypasses both "
                    "and breaks output-capture tests)",
                )
            elif target in {"sys.exit", "exit", "SystemExit"}:
                args = node.args
                if args and isinstance(args[0], (ast.JoinedStr, ast.Constant)):
                    arg = args[0]
                    if isinstance(arg, ast.JoinedStr) or isinstance(
                        arg.value, str
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"{target}(<message>) prints to stderr with exit "
                            "status 1: raise CliError(...) instead so usage "
                            "errors exit 2 with the 'error: ...' format",
                        )


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body only passes/continues."""
    return all(
        isinstance(stmt, (ast.Pass, ast.Continue))
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in handler.body
    )


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(t, ast.Name) and t.id in {"Exception", "BaseException"}
        for t in types
    )


@register
class ExceptionSwallowRule(Rule):
    """EXC001: no bare ``except:`` or ``except Exception: pass``."""

    code = "EXC001"
    title = "no bare except / swallowed broad exceptions"

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt too: "
                    "name the exception types you can actually handle",
                )
            elif _catches_everything(node) and _swallows(node):
                yield self.finding(
                    module,
                    node,
                    "'except Exception: pass' silently swallows every error: "
                    "narrow the type, handle it, or let it propagate",
                )


@register
class SchemaStringRule(Rule):
    """SCH001: schema strings are named constants, validated at the edges."""

    code = "SCH001"
    title = "versioned documents declare and validate name/major schemas"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, module: ParsedModule, project: Project) -> Iterator[Finding]:
        declares_schema_const = False
        # (b) module-level *_SCHEMA constants must match name/major.
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Name) and target.id.endswith("SCHEMA")):
                    continue
                declares_schema_const = True
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, str
                ):
                    if not SCHEMA_PATTERN.match(node.value.value):
                        yield self.finding(
                            module,
                            node,
                            f"schema constant {target.id} = "
                            f"{node.value.value!r} does not match the "
                            "'name/major' convention (e.g. 'duet-bench/1')",
                        )
        # (a) inline "schema": "..." literals must reference a constant.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "schema"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    yield self.finding(
                        module,
                        value,
                        f"inline schema string {value.value!r}: declare it as "
                        "a module-level *_SCHEMA constant so writers and "
                        "readers share (and bump) one definition",
                    )
        # (c) a module that declares a schema and serialises/parses JSON
        # must validate the document against the schema helper.
        if declares_schema_const:
            uses_json = calls_validate = False
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_target(module, node.func) or ""
                last = target.rsplit(".", 1)[-1]
                if target.startswith("json.") and last in {
                    "load",
                    "loads",
                    "dump",
                    "dumps",
                }:
                    uses_json = True
                if last == "validate_schema":
                    calls_validate = True
            if uses_json and not calls_validate:
                yield self.finding(
                    module,
                    module.tree.body[0] if module.tree.body else module.tree,
                    "this module declares a *_SCHEMA constant and reads/writes "
                    "JSON but never calls repro.analysis.schema."
                    "validate_schema: validate documents at the read/write "
                    "boundary",
                )
