"""The duetlint engine: file discovery, parsing, rule running, filtering.

The engine walks the lint roots (``src/`` and ``tools/`` by default),
parses every ``*.py`` file once, hands each :class:`ParsedModule` to the
registered per-file rules that claim it, and runs the whole-program
rules (:class:`~repro.analysis.rules.ProjectRule`) once over the
:class:`~repro.analysis.project.ProgramModel` of the entire tree.  Raw
findings from both passes are then filtered through inline suppressions
and the committed baseline *in the parent* -- workers and the
incremental cache only ever see raw findings, which is what makes
``--jobs N`` sharding and cache hits byte-identical to a cold serial
run.  Rules are pure functions of their inputs -- all repo-wide context
(the fast-path equivalence test, ``docs/api.md``) goes through the
:class:`Project` so the whole engine can be pointed at a fixture tree in
tests.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = [
    "Project",
    "ParsedModule",
    "ModuleImports",
    "LintResult",
    "discover_files",
    "iter_suppressions",
    "run_lint",
]

#: Directories scanned when no explicit paths are given, relative to root.
DEFAULT_ROOTS = ("src", "tools")

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "node_modules"}

_SUPPRESS = re.compile(r"#\s*duetlint:\s*(disable|disable-file)=([A-Za-z0-9_,\s]+)")


class Project:
    """Read-only view of the tree being linted, with cached file reads."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._text_cache: dict[str, str | None] = {}

    def read_text(self, relpath: str) -> str | None:
        """Contents of ``relpath`` (slash-separated), or None if absent."""
        if relpath not in self._text_cache:
            path = self.root / relpath
            try:
                self._text_cache[relpath] = path.read_text()
            except OSError:
                self._text_cache[relpath] = None
        return self._text_cache[relpath]

    def exists(self, relpath: str) -> bool:
        """Whether ``relpath`` exists under the project root."""
        return (self.root / relpath).exists()


class ModuleImports(ast.NodeVisitor):
    """Import bookkeeping a rule needs to resolve dotted call targets.

    Attributes:
        module_aliases: local name -> imported module path, e.g.
            ``{"np": "numpy", "nprand": "numpy.random"}``.
        imported_names: local name -> ``module.attr`` origin for
            ``from module import attr [as name]``.
    """

    def __init__(self):
        self.module_aliases: dict[str, str] = {}
        self.imported_names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.module_aliases[alias.asname] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self.imported_names[alias.asname or alias.name] = f"{module}.{alias.name}"


@dataclass
class ParsedModule:
    """One parsed source file plus the lookups rules share.

    Attributes:
        relpath: slash-separated path relative to the lint root.
        source: raw file contents.
        tree: parsed :mod:`ast` module node.
        lines: ``source.splitlines()``.
        imports: the module's :class:`ModuleImports`.
    """

    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    imports: ModuleImports = field(default_factory=ModuleImports)

    @classmethod
    def parse(cls, relpath: str, source: str) -> "ParsedModule":
        tree = ast.parse(source)
        module = cls(relpath=relpath, source=source, tree=tree)
        module.lines = source.splitlines()
        module.imports.visit(tree)
        return module

    def line_text(self, lineno: int) -> str:
        """Source text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(
        self, node: ast.AST, rule: str, message: str, severity: str = "error"
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        return Finding(
            path=self.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
            severity=severity,
            line_text=self.line_text(line),
        )


def iter_suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Parse ``# duetlint: disable=...`` directives out of ``source``.

    Returns:
        ``(per_line, whole_file)`` where ``per_line`` maps a 1-based line
        number to the rule codes disabled on that line, and
        ``whole_file`` is the set of codes disabled for the entire file.
        The pseudo-code ``all`` disables every rule.
    """
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(line)
        if match is None:
            continue
        codes = {c.strip() for c in match.group(2).split(",") if c.strip()}
        if match.group(1) == "disable-file":
            whole_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, whole_file


def _suppressed(finding: Finding, per_line: dict[int, set[str]], whole: set[str]):
    if "all" in whole or finding.rule in whole:
        return True
    codes = per_line.get(finding.line, ())
    return "all" in codes or finding.rule in codes


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` invocation.

    Attributes:
        findings: surviving findings, sorted by path then line.
        suppressed: count removed by inline suppressions.
        baselined: count removed by the baseline file.
        files_scanned: number of files parsed and checked.
        cache_hits: incremental-cache entries served from disk (0 when
            uncached).  Excluded from the JSON report document: warm
            and cold runs must serialize identically.
        cache_misses: entries recomputed this run (ditto).
        program: the built :class:`~repro.analysis.project.ProgramModel`
            when whole-program rules ran, for ``--graph-output``; never
            serialized.
    """

    findings: list[Finding]
    suppressed: int = 0
    baselined: int = 0
    files_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    program: object | None = None

    @property
    def errors(self) -> list[Finding]:
        """Findings with ``error`` severity (these fail the run)."""
        return [f for f in self.findings if f.severity == "error"]

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean, 1 when findings fail the run.

        ``strict`` promotes warnings to failures.
        """
        failing = self.findings if strict else self.errors
        return 1 if failing else 0


def discover_files(root: Path, paths: list[str] | None = None) -> list[str]:
    """Python files to lint, slash-separated and relative to ``root``.

    Args:
        root: the lint root (normally the repo root).
        paths: explicit files/directories (relative to ``root`` or
            absolute); defaults to :data:`DEFAULT_ROOTS`.

    Raises:
        ValueError: if an explicit path does not exist.
    """
    root = Path(root)
    targets = []
    if paths:
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            if not path.exists():
                raise ValueError(f"no such file or directory: {raw}")
            targets.append(path)
    else:
        targets = [root / d for d in DEFAULT_ROOTS if (root / d).is_dir()]
    found: set[str] = set()
    for target in targets:
        if target.is_file():
            if target.suffix == ".py":
                found.add(target.resolve().relative_to(root.resolve()).as_posix())
            continue
        for path in target.rglob("*.py"):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            found.add(path.resolve().relative_to(root.resolve()).as_posix())
    return sorted(found)


def _check_file(project: Project, relpath: str, source: str, rules: list) -> list[Finding]:
    """Raw findings of the per-file rules on one source file.

    Pre-suppression, pre-baseline: this is the unit of work the
    incremental cache stores and the ``--jobs`` workers return.
    Unparseable files produce a single ``parse-error`` finding.
    """
    try:
        module = ParsedModule.parse(relpath, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="parse-error",
                message=f"could not parse file: {exc.msg}",
                severity="error",
                line_text=(exc.text or "").rstrip("\n"),
            )
        ]
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies_to(relpath):
            findings.extend(rule.check(module, project))
    return findings


def _context_digest(project: Project, rules: list) -> str:
    """Digest over the declared ``context_files`` of ``rules``."""
    from repro.analysis.incremental import IncrementalCache

    parts = sorted(
        {
            (ctx, project.read_text(ctx) or "<absent>")
            for rule in rules
            for ctx in rule.context_files
        }
    )
    return IncrementalCache.content_digest(list(parts))


def _lint_shard(
    root: str,
    relpaths: list[str],
    rule_codes: list[str],
    cache_enabled: bool,
) -> tuple[list[dict], int, int, int]:
    """One ``--jobs`` work unit: lint ``relpaths`` with the per-file rules.

    Top-level (picklable) so :func:`repro.parallel.run_sharded` can ship
    it to a worker process under any start method.  Returns
    ``(finding payloads, files scanned, cache hits, cache misses)`` --
    raw findings only; the parent applies suppressions and the baseline.
    """
    from repro.analysis.incremental import IncrementalCache, engine_digest
    from repro.analysis.rules import get_rules

    project = Project(root)
    rules = get_rules(rule_codes) if rule_codes else []
    cache = IncrementalCache(root, enabled=cache_enabled)
    engine = engine_digest() if cache.enabled else ""
    context = _context_digest(project, rules)
    payloads: list[dict] = []
    scanned = 0
    for relpath in relpaths:
        source = project.read_text(relpath)
        if source is None:
            continue
        scanned += 1
        key = cache.module_key(engine, rule_codes, context, relpath, source)
        findings = cache.load(key)
        if findings is None:
            findings = _check_file(project, relpath, source, rules)
            cache.store(key, findings)
        payloads.extend(f.to_payload() for f in findings)
    return payloads, scanned, cache.hits, cache.misses


def _make_shards(relpaths: list[str], jobs: int) -> list[list[str]]:
    """Contiguous shards of the (sorted) work-list.

    Sharding never affects output -- findings are re-sorted and counts
    summed in the parent -- so the split only balances work.  A few
    shards per worker smooths out expensive files.
    """
    if not relpaths:
        return []
    shard_count = min(len(relpaths), max(1, jobs * 4 if jobs > 1 else 1))
    size = -(-len(relpaths) // shard_count)
    return [relpaths[i : i + size] for i in range(0, len(relpaths), size)]


def run_lint(
    root: str | Path,
    paths: list[str] | None = None,
    rules: list | None = None,
    baseline_fingerprints: set[str] | None = None,
    jobs: int = 1,
    cache=None,
) -> LintResult:
    """Lint ``paths`` under ``root`` with ``rules``.

    Args:
        root: lint root directory; rule scopes and the baseline are
            interpreted relative to it.
        paths: explicit file/directory selection (default: ``src`` and
            ``tools`` under ``root``).  Whole-program rules always see
            the full tree; their findings are filtered to the selection.
        rules: rule instances to run (default: every registered rule --
            resolved lazily to avoid an import cycle with
            :mod:`repro.analysis.rules`).
        baseline_fingerprints: fingerprints of grandfathered findings to
            filter out.
        jobs: worker processes for the per-file pass (sharded through
            :func:`repro.parallel.run_sharded`); output is byte-identical
            for every value.
        cache: an :class:`~repro.analysis.incremental.IncrementalCache`,
            or None to lint cold.

    Returns:
        A :class:`LintResult`.  Unparseable files produce a single
        ``parse-error`` finding rather than aborting the run.
    """
    from repro.analysis.rules import ProjectRule

    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    project = Project(root)
    baseline_fingerprints = baseline_fingerprints or set()
    selected = discover_files(project.root, paths)
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    raw: list[Finding] = []
    scanned = cache_hits = cache_misses = 0

    # per-file pass, sharded (jobs=1 runs inline through the same path)
    from repro.parallel import CampaignTask, run_sharded

    shards = _make_shards(selected, jobs)
    tasks = [
        CampaignTask(
            index=i,
            fn=_lint_shard,
            kwargs={
                "root": str(project.root),
                "relpaths": shard,
                "rule_codes": [r.code for r in file_rules],
                "cache_enabled": cache is not None and cache.enabled,
            },
        )
        for i, shard in enumerate(shards)
    ]
    run = run_sharded(tasks, jobs=jobs, clock=None, warm=False)
    for payloads, shard_scanned, hits, misses in run.results:
        raw.extend(Finding.from_payload(p) for p in payloads)
        scanned += shard_scanned
        cache_hits += hits
        cache_misses += misses

    # whole-program pass, in the parent
    program = None
    if project_rules:
        from repro.analysis.incremental import engine_digest
        from repro.analysis.project import ProgramModel

        program = ProgramModel.build(project)
        project_findings = None
        key = None
        if cache is not None and cache.enabled:
            parts = [
                (info.relpath, info.parsed.source)
                for info in program.modules.values()
            ]
            parts.extend(
                (f"context:{ctx}", project.read_text(ctx) or "<absent>")
                for rule in project_rules
                for ctx in rule.context_files
            )
            key = cache.program_key(
                engine_digest(),
                [r.code for r in project_rules],
                cache.content_digest(parts),
            )
            project_findings = cache.load(key)
        if project_findings is None:
            project_findings = []
            for rule in project_rules:
                project_findings.extend(rule.check_program(program, project))
            if key is not None:
                cache.store(key, project_findings)
        selected_set = set(selected)
        raw.extend(f for f in project_findings if f.path in selected_set)
        cache_hits += cache.hits if cache is not None else 0
        cache_misses += cache.misses if cache is not None else 0

    # parent-side filtering: suppressions, then baseline
    findings: list[Finding] = []
    suppressed = baselined = 0
    suppression_cache: dict[str, tuple[dict[int, set[str]], set[str]]] = {}
    for finding in raw:
        if finding.path not in suppression_cache:
            source = project.read_text(finding.path)
            suppression_cache[finding.path] = (
                iter_suppressions(source) if source is not None else ({}, set())
            )
        per_line, whole_file = suppression_cache[finding.path]
        if _suppressed(finding, per_line, whole_file):
            suppressed += 1
        elif finding.fingerprint in baseline_fingerprints:
            baselined += 1
        else:
            findings.append(finding)
    findings.sort()
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        baselined=baselined,
        files_scanned=scanned,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        program=program,
    )
