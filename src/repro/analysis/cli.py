"""The ``lint`` subcommand: argument wiring and report formatting.

Used two ways: ``repro.cli`` mounts :func:`configure_parser` /
:func:`cmd_lint` as the ``python -m repro lint`` subcommand, and
``tools/duetlint.py`` exposes the same behaviour as a standalone console
entry.  Exit convention (repo-wide): 0 clean, 1 findings, 2 usage or
internal error.  Usage problems are raised as ``ValueError`` so the
shared CLI error handler prints ``error: <msg>`` on stderr and returns 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import run_lint
from repro.analysis.incremental import IncrementalCache
from repro.analysis.rules import REGISTRY, get_rules
from repro.analysis.schema import validate_schema

__all__ = ["REPORT_SCHEMA", "configure_parser", "cmd_lint", "main"]

#: schema identifier of the ``--format=json`` report document.
REPORT_SCHEMA = "duetlint/1"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Add the lint options to ``parser`` (a subparser or standalone)."""
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src/ and tools/)",
    )
    parser.add_argument(
        "--root", default=".",
        help="lint root containing src/ (default: current directory)",
    )
    parser.add_argument(
        "--format", default="text", choices=("text", "json"),
        dest="output_format", help="report format on stdout",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="CODE",
        help="run only the named rule (repeatable; see --list-rules)",
    )
    parser.add_argument(
        "--baseline", default=None, choices=("update",),
        help="'update' rewrites the baseline with the current findings",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report grandfathered findings too",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run (exit 1)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report document to PATH",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard the per-file pass over N worker processes "
        "(byte-identical report for any N; default 1, inline)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the incremental result cache (.duet-cache/)",
    )
    parser.add_argument(
        "--graph-output", default=None, metavar="PATH",
        help="also write the whole-program import graph "
        "(duetlint-graph/1 JSON) to PATH",
    )
    parser.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="list registered rules and exit",
    )


def _report_document(result, rules, root: str) -> dict:
    document = {
        "schema": REPORT_SCHEMA,
        "root": str(root),
        "rules": [
            {"code": r.code, "severity": r.severity, "title": r.title}
            for r in rules
        ],
        "findings": [f.as_dict() for f in result.findings],
        "counts": {
            "findings": len(result.findings),
            "errors": len(result.errors),
            "warnings": len(result.findings) - len(result.errors),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "files_scanned": result.files_scanned,
        },
        "clean": not result.findings,
    }
    validate_schema(document, REPORT_SCHEMA)
    return document


def _write_graph(path: str, result, root: Path) -> None:
    """Write the import-graph document (building it if no project rule
    ran, so ``--rule DET001 --graph-output`` still works)."""
    program = result.program
    if program is None:
        from repro.analysis.engine import Project
        from repro.analysis.project import ProgramModel

        program = ProgramModel.build(Project(root))
    Path(path).write_text(
        json.dumps(program.graph_document(), indent=2, sort_keys=True) + "\n"
    )


def cmd_lint(args, out) -> int:
    """Run the lint per ``args``; returns the exit code (0/1).

    Raises:
        ValueError: on usage errors (unknown rule, bad root/paths) --
            mapped to exit 2 by the caller.
    """
    if args.list_rules:
        for code in sorted(REGISTRY):
            rule = REGISTRY[code]()
            out.write(f"{code}  [{rule.severity:7s}] {rule.title}\n")
        return 0
    root = Path(args.root)
    if not (root / "src").is_dir():
        raise ValueError(
            f"lint root {root} has no src/ directory (use --root to point "
            "at the repository root)"
        )
    if args.jobs < 1:
        raise ValueError(f"--jobs must be >= 1, got {args.jobs}")
    rules = get_rules(args.rule)
    cache = IncrementalCache(root, enabled=not args.no_cache)
    baseline_path = root / DEFAULT_BASELINE_NAME
    if args.baseline == "update":
        result = run_lint(
            root, paths=args.paths or None, rules=rules,
            jobs=args.jobs, cache=cache,
        )
        save_baseline(baseline_path, result.findings)
        out.write(
            f"baseline updated: {len(result.findings)} finding(s) "
            f"grandfathered in {baseline_path}\n"
        )
        return 0
    fingerprints = set() if args.no_baseline else load_baseline(baseline_path)
    result = run_lint(
        root,
        paths=args.paths or None,
        rules=rules,
        baseline_fingerprints=fingerprints,
        jobs=args.jobs,
        cache=cache,
    )
    if args.graph_output:
        _write_graph(args.graph_output, result, root)
    document = _report_document(result, rules, args.root)
    if args.output:
        Path(args.output).write_text(json.dumps(document, indent=2) + "\n")
    if args.output_format == "json":
        out.write(json.dumps(document, indent=2) + "\n")
    else:
        for finding in result.findings:
            out.write(finding.format() + "\n")
        counts = document["counts"]
        out.write(
            f"{counts['findings']} finding(s) "
            f"({counts['errors']} error(s), {counts['warnings']} warning(s), "
            f"{counts['suppressed']} suppressed, "
            f"{counts['baselined']} baselined) "
            f"in {counts['files_scanned']} file(s)\n"
        )
    return result.exit_code(strict=args.strict)


def main(argv: list[str] | None = None, out=None, err=None) -> int:
    """Standalone entry point used by ``tools/duetlint.py``."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    parser = argparse.ArgumentParser(
        prog="duetlint",
        description="project-specific static analysis for the DUET repro",
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    try:
        return cmd_lint(args, out)
    except ValueError as exc:
        err.write(f"error: {exc}\n")
        return 2
