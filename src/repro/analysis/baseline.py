"""The committed duetlint baseline: grandfathered findings by fingerprint.

The baseline lets duetlint be adopted on a tree with pre-existing
findings: ``python -m repro lint --baseline update`` records the current
findings' fingerprints, and subsequent runs filter them out while still
failing on anything *new*.  The file is committed
(``.duetlint-baseline.json`` at the repo root) so the grandfathered set
is reviewed like any other change; the goal is to keep it empty.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.schema import SchemaError, validate_schema

__all__ = ["BASELINE_SCHEMA", "DEFAULT_BASELINE_NAME", "load_baseline", "save_baseline"]

#: schema identifier written into the baseline file.
BASELINE_SCHEMA = "duetlint-baseline/1"

#: default baseline filename, resolved against the lint root.
DEFAULT_BASELINE_NAME = ".duetlint-baseline.json"


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints grandfathered by the baseline at ``path``.

    A missing file is an empty baseline.  A malformed or
    wrong-schema file raises :class:`~repro.analysis.schema.SchemaError`
    so a corrupted baseline cannot silently grandfather everything.
    """
    path = Path(path)
    if not path.is_file():
        return set()
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"baseline {path} is not valid JSON: {exc}") from exc
    validate_schema(document, BASELINE_SCHEMA)
    entries = document.get("entries", [])
    if not isinstance(entries, list):
        raise SchemaError(f"baseline {path} 'entries' must be a list")
    fingerprints = set()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise SchemaError(
                f"baseline {path} entries must be objects with a 'fingerprint'"
            )
        fingerprints.add(entry["fingerprint"])
    return fingerprints


def save_baseline(path: str | Path, findings: list[Finding]) -> dict:
    """Write ``findings`` as the new baseline at ``path``; returns the doc.

    Entries keep the human-readable context (path, rule, message) next
    to the fingerprint so baseline diffs are reviewable.
    """
    document = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
            }
            for f in sorted(findings)
        ],
    }
    validate_schema(document, BASELINE_SCHEMA)
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return document
