"""duetlint: project-specific static analysis for the DUET reproduction.

An AST-based lint engine that mechanically enforces the invariants the
repo otherwise keeps only by convention -- seeded determinism, fast/slow
path parity, the exit-2 CLI convention, schema-versioned bench files,
and exception/float-comparison hygiene.  See ``docs/linting.md`` for the
rule catalogue and the suppression/baseline workflow.

Entry points:

- ``python -m repro lint`` (the CLI; exit 0 clean, 1 findings, 2 usage)
- ``python tools/duetlint.py`` (standalone console entry)
- ``python tools/lint_changed.py`` (lint only files changed vs main)
- :func:`run_lint` (the library API used by the tests)
"""

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE_NAME,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import (
    LintResult,
    ParsedModule,
    Project,
    discover_files,
    run_lint,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import REGISTRY, Rule, default_rules, get_rules, register
from repro.analysis.schema import SchemaError, parse_schema, validate_schema

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintResult",
    "ParsedModule",
    "Project",
    "REGISTRY",
    "Rule",
    "SchemaError",
    "default_rules",
    "discover_files",
    "get_rules",
    "load_baseline",
    "parse_schema",
    "register",
    "run_lint",
    "save_baseline",
    "validate_schema",
]
