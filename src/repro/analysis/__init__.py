"""duetlint: project-specific static analysis for the DUET reproduction.

An AST-based lint engine that mechanically enforces the invariants the
repo otherwise keeps only by convention -- seeded determinism, fast/slow
path parity, the exit-2 CLI convention, schema-versioned bench files,
exception/float-comparison hygiene, and (via the whole-program pass) the
package layering contract, RNG seed provenance, exit pricing coverage,
and dead-export pruning.  See ``docs/linting.md`` for the rule catalogue
and the suppression/baseline workflow.

Entry points:

- ``python -m repro lint`` (the CLI; exit 0 clean, 1 findings, 2 usage)
- ``python tools/duetlint.py`` (standalone console entry)
- ``python tools/lint_changed.py`` (lint changed files + their dependents)
- :func:`repro.analysis.engine.run_lint` (the library API the tests use)

This ``__init__`` deliberately re-exports nothing: every consumer --
the CLI, the tools, the tests -- imports from the defining submodule
(``engine``, ``findings``, ``rules``, ``project``, ...), which is
exactly the discipline DEAD001 enforces on the rest of the tree.
"""
