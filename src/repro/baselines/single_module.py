"""Single-module baseline: DUET's own Executor with no Speculator.

This is the paper's primary comparison point for Fig. 11(a): the same
16x16 PE array, memory hierarchy and dataflow, but no dual-module
processing -- every output is computed accurately and every weight row is
fetched.  It is exactly the ``BASE`` stage of the DUET simulator; this
module gives it a first-class name.
"""

from __future__ import annotations

from repro.sim.accelerator import DuetAccelerator
from repro.sim.config import DuetConfig, stage_config
from repro.sim.energy import EnergyModel
from repro.workloads.sparsity import SparsityModel

__all__ = ["single_module"]


def single_module(
    config: DuetConfig | None = None,
    energy_model: EnergyModel | None = None,
    sparsity: SparsityModel | None = None,
) -> DuetAccelerator:
    """Build the single-module (Executor-only) baseline accelerator."""
    base_config = stage_config("BASE", config)
    return DuetAccelerator(
        config=base_config, energy_model=energy_model, sparsity=sparsity
    )
