"""Predict baseline (Zhu et al.) -- coupled output-sparsity prediction.

Predict runs a lightweight prediction pass as "indeed part of the
execution process" for *every* output, then completes only the
predicted-positive ones.  To even out workloads it enlarges the tile of
each computation step (costing buffer capacity and memory footprint)
instead of reordering; it also lacks local data reuse.  The paper reports
2.21x DUET's energy and EDP, with latency closer to DUET's.

``PREDICT_CNVLUTIN`` combines Predict's output prediction with
Cnvlutin-style input skipping -- the strongest coupled-design point the
paper compares against ("Predict+Cnvlutin can achieve comparable
performance [to] DUET", but 1.81x energy and 2.03x EDP).
"""

from __future__ import annotations

from repro.baselines.base import BaselineCharacter, BaselineCnnAccelerator
from repro.sim.config import DuetConfig
from repro.sim.energy import EnergyModel

__all__ = ["PREDICT", "PREDICT_CNVLUTIN", "predict", "predict_cnvlutin"]

#: Predict character: per-output prediction overhead, big balancing tiles.
PREDICT = BaselineCharacter(
    name="predict",
    output_mode="predict",
    input_skip=False,
    local_reuse=False,
    tile_positions=64,
    predict_overhead=0.08,
    glb_accesses_per_mac=1.2,
)

#: Predict + Cnvlutin: output prediction plus input skipping.
PREDICT_CNVLUTIN = BaselineCharacter(
    name="predict+cnvlutin",
    output_mode="predict",
    input_skip=True,
    local_reuse=False,
    tile_positions=64,
    predict_overhead=0.08,
    glb_accesses_per_mac=2.1,
)


def predict(
    config: DuetConfig | None = None, energy_model: EnergyModel | None = None
) -> BaselineCnnAccelerator:
    """Build the Predict comparison accelerator."""
    return BaselineCnnAccelerator(PREDICT, config, energy_model)


def predict_cnvlutin(
    config: DuetConfig | None = None, energy_model: EnergyModel | None = None
) -> BaselineCnnAccelerator:
    """Build the Predict+Cnvlutin comparison accelerator."""
    return BaselineCnnAccelerator(PREDICT_CNVLUTIN, config, energy_model)
