"""SnaPEA baseline (Akhlaghi et al., ISCA 2018) -- output early termination.

SnaPEA couples prediction with execution: MACs accumulate in sign-ordered
fashion and stop early once a ReLU output is provably negative.  The
insensitive outputs therefore still cost a *fraction* of their receptive
field (unlike DUET, where the Speculator's decision lets the Executor skip
them entirely), termination times are irregular (workload imbalance), and
the design has no local data reuse -- the paper reports 2.21x DUET's
energy and 3.98x its EDP.
"""

from __future__ import annotations

from repro.baselines.base import BaselineCharacter, BaselineCnnAccelerator
from repro.sim.config import DuetConfig
from repro.sim.energy import EnergyModel

__all__ = ["SNAPEA", "snapea"]

#: SnaPEA character: aggressive early termination, async-PE balancing
#: (modelled as coarse synchronisation granularity).
SNAPEA = BaselineCharacter(
    name="snapea",
    output_mode="early_term",
    input_skip=False,
    local_reuse=False,
    tile_positions=64,
    early_term_fraction=0.15,
    glb_accesses_per_mac=1.15,
)


def snapea(
    config: DuetConfig | None = None, energy_model: EnergyModel | None = None
) -> BaselineCnnAccelerator:
    """Build the SnaPEA comparison accelerator."""
    return BaselineCnnAccelerator(SNAPEA, config, energy_model)
