"""Cnvlutin baseline (Albericio et al., ISCA 2016) -- input-sparsity skipping.

Cnvlutin skips zero-input-activation MACs in time but computes every
output fully.  Its irregular input sparsity causes lane imbalance, and the
design uses a single level of on-chip buffering without local data reuse,
costing it ~1.77x DUET's energy in the paper's comparison.
"""

from __future__ import annotations

from repro.baselines.base import BaselineCharacter, BaselineCnnAccelerator
from repro.sim.config import DuetConfig
from repro.sim.energy import EnergyModel

__all__ = ["CNVLUTIN", "cnvlutin"]

#: Cnvlutin character: input skipping, no output handling, no local reuse.
CNVLUTIN = BaselineCharacter(
    name="cnvlutin",
    output_mode="none",
    input_skip=True,
    local_reuse=False,
    tile_positions=8,
    glb_accesses_per_mac=1.0,
)


def cnvlutin(
    config: DuetConfig | None = None, energy_model: EnergyModel | None = None
) -> BaselineCnnAccelerator:
    """Build the Cnvlutin comparison accelerator."""
    return BaselineCnnAccelerator(CNVLUTIN, config, energy_model)
