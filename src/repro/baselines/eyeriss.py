"""Eyeriss baseline (Chen et al., ISCA 2016) -- dense with power gating.

"Eyeriss equals a dense baseline as it only supports power-gating to save
energy but [no] computation skipping to improve performance; thus, it has
the worst latency among others" (paper Section V-E).  It shares DUET's
two-level on-chip hierarchy with local data reuse, which is why its
*energy* stays competitive with the skipping-but-reuse-free designs.
"""

from __future__ import annotations

from repro.baselines.base import BaselineCharacter, BaselineCnnAccelerator
from repro.sim.config import DuetConfig
from repro.sim.energy import EnergyModel

__all__ = ["EYERISS", "eyeriss"]

#: Eyeriss character: dense execution, zero-input power gating, local reuse.
EYERISS = BaselineCharacter(
    name="eyeriss",
    output_mode="none",
    input_skip=False,
    input_gate=True,
    local_reuse=True,
    tile_positions=8,
)


def eyeriss(
    config: DuetConfig | None = None, energy_model: EnergyModel | None = None
) -> BaselineCnnAccelerator:
    """Build the Eyeriss comparison accelerator."""
    return BaselineCnnAccelerator(EYERISS, config, energy_model)
