"""Comparison accelerators (paper Section V-E, Fig. 11b).

- :mod:`repro.baselines.single_module` -- DUET's Executor alone (the
  Fig. 11a baseline).
- :mod:`repro.baselines.eyeriss` -- dense execution with power gating.
- :mod:`repro.baselines.cnvlutin` -- input-sparsity skipping.
- :mod:`repro.baselines.snapea` -- output early termination.
- :mod:`repro.baselines.predict` -- coupled output prediction, and the
  Predict+Cnvlutin combination.

All baselines are iso-MAC and iso-technology with DUET: they share the PE
array geometry, workloads, and energy constants, differing only in the
capabilities their :class:`~repro.baselines.base.BaselineCharacter`
grants.
"""

from repro.baselines.base import BaselineCharacter
from repro.baselines.cnvlutin import cnvlutin
from repro.baselines.eyeriss import eyeriss
from repro.baselines.predict import predict, predict_cnvlutin
from repro.baselines.single_module import single_module
from repro.baselines.snapea import snapea

__all__ = [
    "BaselineCharacter",
    "eyeriss",
    "cnvlutin",
    "snapea",
    "predict",
    "predict_cnvlutin",
    "single_module",
]
