"""Comparison accelerators (paper Section V-E, Fig. 11b).

- :mod:`repro.baselines.single_module` -- DUET's Executor alone (the
  Fig. 11a baseline).
- :mod:`repro.baselines.eyeriss` -- dense execution with power gating.
- :mod:`repro.baselines.cnvlutin` -- input-sparsity skipping.
- :mod:`repro.baselines.snapea` -- output early termination.
- :mod:`repro.baselines.predict` -- coupled output prediction, and the
  Predict+Cnvlutin combination.

All baselines are iso-MAC and iso-technology with DUET: they share the PE
array geometry, workloads, and energy constants, differing only in the
capabilities their :class:`~repro.baselines.base.BaselineCharacter`
grants.
"""

from repro.baselines.base import BaselineCharacter, BaselineCnnAccelerator
from repro.baselines.cnvlutin import CNVLUTIN, cnvlutin
from repro.baselines.eyeriss import EYERISS, eyeriss
from repro.baselines.predict import (
    PREDICT,
    PREDICT_CNVLUTIN,
    predict,
    predict_cnvlutin,
)
from repro.baselines.single_module import single_module
from repro.baselines.snapea import SNAPEA, snapea

__all__ = [
    "BaselineCharacter",
    "BaselineCnnAccelerator",
    "eyeriss",
    "cnvlutin",
    "snapea",
    "predict",
    "predict_cnvlutin",
    "single_module",
    "EYERISS",
    "CNVLUTIN",
    "SNAPEA",
    "PREDICT",
    "PREDICT_CNVLUTIN",
]
