"""Shared machinery for the comparison CNN accelerators (Fig. 11b).

The paper compares DUET against Eyeriss, Cnvlutin, SnaPEA and Predict,
"scaled to have the same number of MACs and similar on-chip memory".  Each
baseline is described by a :class:`BaselineCharacter` -- how it handles
output sparsity (none / early termination / prediction), whether it skips
zero-input MACs in time or merely power-gates them, whether it has a
two-level on-chip hierarchy with local data reuse (only Eyeriss and DUET
do; Cnvlutin/SnaPEA/Predict "use only one level of on-chip buffer and have
no local data reuse", which is why their energy is ~2x DUET's) -- and a
common cycle/energy engine turns a character plus DUET's workloads into a
:class:`~repro.sim.report.ModelReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.layer_spec import BYTES_PER_ELEMENT, ModelSpec
from repro.sim.config import DuetConfig
from repro.sim.dram import Dram
from repro.sim.energy import EnergyBreakdown, EnergyModel
from repro.sim.report import LayerReport, ModelReport
from repro.sim.tiling import choose_tiling
from repro.workloads.sparsity import CnnLayerWorkload

__all__ = ["BaselineCharacter", "BaselineCnnAccelerator"]

#: local-buffer accesses per MAC for two-level-hierarchy designs.
_LOCAL_ACCESSES_PER_MAC = 2.0


@dataclass(frozen=True)
class BaselineCharacter:
    """What a comparison accelerator can and cannot do.

    Attributes:
        name: display name, e.g. ``"eyeriss"``.
        output_mode: ``"none"`` (computes every output fully),
            ``"early_term"`` (SnaPEA: negative outputs stop after a
            fraction of the receptive field), or ``"predict"`` (Predict:
            a lightweight in-line prediction pass for every output, then
            full compute for predicted-positive ones).
        input_skip: skip zero-input MACs in *time* (Cnvlutin).
        input_gate: power-gate zero-input MACs -- saves energy, not cycles
            (Eyeriss).
        local_reuse: two-level on-chip hierarchy with PE-local reuse
            (Eyeriss); otherwise operands stream from the GLB per MAC.
        tile_positions: output positions per synchronisation step; Predict
            "needs to increase the tile size of each computation step" to
            even out workloads, so its value is larger.
        early_term_fraction: fraction of the receptive field SnaPEA-style
            early termination still computes for insensitive outputs.
        predict_overhead: fraction of the receptive field the coupled
            predictor costs per output (it is "indeed part of the
            execution process").
        glb_accesses_per_mac: GLB accesses charged per executed MAC for
            designs without local reuse.  This constant encodes each
            design's published buffer-traffic behaviour (e.g.
            Predict+Cnvlutin streams uncompressed data for its prediction
            pass, so its per-useful-MAC traffic is highest); values are
            calibrated so the energy ratios land at the paper's reported
            comparison (Section V-E).  Interconnect energy is folded into
            this constant (the baselines' published bus structures differ
            from DUET's NoC, which we model explicitly).
    """

    name: str
    output_mode: str = "none"
    input_skip: bool = False
    input_gate: bool = False
    local_reuse: bool = False
    tile_positions: int = 8
    early_term_fraction: float = 0.5
    predict_overhead: float = 0.15
    glb_accesses_per_mac: float = 1.0

    def __post_init__(self):
        if self.output_mode not in ("none", "early_term", "predict"):
            raise ValueError(f"unknown output_mode {self.output_mode!r}")
        if not 0.0 < self.early_term_fraction <= 1.0:
            raise ValueError("early_term_fraction must be in (0, 1]")
        if not 0.0 <= self.predict_overhead <= 1.0:
            raise ValueError("predict_overhead must be in [0, 1]")


class BaselineCnnAccelerator:
    """Cycle/energy engine for one :class:`BaselineCharacter`.

    Shares the Executor geometry, workloads and energy constants with the
    DUET simulator so that comparisons are iso-MAC and iso-technology.
    """

    def __init__(
        self,
        character: BaselineCharacter,
        config: DuetConfig | None = None,
        energy_model: EnergyModel | None = None,
    ):
        self.character = character
        self.config = config if config is not None else DuetConfig()
        self.energy_model = energy_model if energy_model is not None else EnergyModel()

    # -- per-layer cost construction -------------------------------------------

    def _position_cycles(self, workload: CnnLayerWorkload) -> np.ndarray:
        """Per-position cycles of a *fully computed* output, shape ``(P,)``."""
        cfg = self.config
        return workload.position_cycles(
            cfg.executor_cols, use_imap=self.character.input_skip
        )

    def _channel_position_cycles(self, workload: CnnLayerWorkload) -> np.ndarray:
        """Cycles per (channel, position), shape ``(C, P)``."""
        ch = self.character
        full = self._position_cycles(workload).astype(np.float64)
        positions = full.shape[0]
        channels = workload.spec.out_channels
        omap = workload.omap.reshape(channels, positions).astype(np.float64)
        if ch.output_mode == "none":
            return np.broadcast_to(full, (channels, positions)).copy()
        if ch.output_mode == "early_term":
            partial = np.ceil(full * ch.early_term_fraction)
            return omap * full + (1.0 - omap) * partial
        # predict: prediction pass for every output + full compute for
        # predicted-sensitive ones
        overhead = np.ceil(full * ch.predict_overhead)
        return overhead + omap * full

    def _channel_macs(self, workload: CnnLayerWorkload) -> np.ndarray:
        """Executed MACs per channel, consistent with the cycle costs."""
        ch = self.character
        if ch.input_skip:
            per_pos = workload.position_costs().reshape(-1).astype(np.float64)
        else:
            per_pos = np.full(
                workload.spec.out_h * workload.spec.out_w,
                float(workload.spec.receptive_field),
            )
        channels = workload.spec.out_channels
        omap = workload.omap.reshape(channels, -1).astype(np.float64)
        if ch.output_mode == "none":
            return np.broadcast_to(per_pos, (channels, per_pos.shape[0])).sum(axis=1)
        if ch.output_mode == "early_term":
            partial = per_pos * ch.early_term_fraction
            return (omap * per_pos + (1.0 - omap) * partial).sum(axis=1)
        overhead = per_pos * ch.predict_overhead
        return (overhead + omap * per_pos).sum(axis=1)

    def _layer_cycles(self, per_channel_position: np.ndarray) -> int:
        """Tile-synchronised schedule: naive grouping, no reordering."""
        cfg = self.config
        channels, positions = per_channel_position.shape
        tile = self.character.tile_positions
        num_tiles = -(-positions // tile)
        pad_p = num_tiles * tile - positions
        arr = per_channel_position
        if pad_p:
            arr = np.pad(arr, ((0, 0), (0, pad_p)))
        tiles = arr.reshape(channels, num_tiles, tile).sum(axis=2)
        rows = cfg.executor_rows
        pad_c = (-channels) % rows
        if pad_c:
            tiles = np.pad(tiles, ((0, pad_c), (0, 0)))
        grouped = tiles.reshape(-1, rows, num_tiles)
        return int(np.ceil(grouped.max(axis=1)).sum())

    # -- top level ---------------------------------------------------------------

    def run(
        self, model: ModelSpec, workloads: list[CnnLayerWorkload]
    ) -> ModelReport:
        """Simulate the CONV layers of ``model`` on this baseline."""
        cfg = self.config
        ch = self.character
        em = self.energy_model
        dram = Dram(cfg.dram_bandwidth)
        report = ModelReport(f"{model.name}@{ch.name}", cfg)
        for workload in workloads:
            spec = workload.spec
            costs = self._channel_position_cycles(workload)
            cycles = self._layer_cycles(costs)
            executed = float(self._channel_macs(workload).sum())

            # iso-memory comparison: baselines have "similar on-chip
            # memory" (paper Section V-E) and face the same GLB-capacity
            # tiling constraints as DUET
            tiling = choose_tiling(spec, cfg.glb_bytes)
            dram_words = tiling.dram_total_words
            memory_cycles = dram.read(
                tiling.dram_read_words * BYTES_PER_ELEMENT
            ) + dram.write(tiling.dram_write_words * BYTES_PER_ELEMENT)
            total_cycles = max(cycles, memory_cycles)

            # energy: gated designs spend MAC energy only on nonzero
            # inputs, but data movement through the local buffers is not
            # gated -- operands still stream to the PEs
            if ch.input_gate and not ch.input_skip:
                energetic_macs = executed * workload.input_density
            else:
                energetic_macs = executed
            if ch.local_reuse:
                local = executed * _LOCAL_ACCESSES_PER_MAC * em.local_access
                glb = dram_words * em.glb_access
            else:
                local = 0.0
                glb = (
                    executed * ch.glb_accesses_per_mac + dram_words
                ) * em.glb_access
            energy = EnergyBreakdown(
                executor_compute=energetic_macs * em.mac_int16,
                executor_local=local,
                glb=glb,
                dram=dram_words * em.dram_access,
            )
            capacity = float(cycles) * cfg.executor_rows * cfg.executor_cols
            report.layers.append(
                LayerReport(
                    name=spec.name,
                    executor_cycles=cycles,
                    speculator_cycles=0,
                    exposed_speculation_cycles=0,
                    memory_cycles=memory_cycles,
                    compute_cycles=cycles,
                    total_cycles=total_cycles,
                    executed_macs=int(executed),
                    dense_macs=spec.macs,
                    utilization=executed / capacity if capacity else 1.0,
                    energy=energy,
                    dram_bytes=dram_words * BYTES_PER_ELEMENT,
                )
            )
        return report

    def __repr__(self) -> str:
        return f"BaselineCnnAccelerator({self.character.name})"
