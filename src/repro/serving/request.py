"""Request and outcome records of the serving tier.

A :class:`Request` is one inference job arriving at the serving front
end: a registered benchmark model plus a per-request workload seed (the
sparsity draw standing in for "this user's input sample").  All times are
integer **simulated accelerator cycles** at the hardware clock
(:attr:`repro.sim.config.DuetConfig.clock_hz`, 1 GHz default, so one
cycle is one nanosecond) -- the whole serving simulation is
discrete-event and therefore exactly reproducible.

A :class:`RequestRecord` is the request's final account: completed (with
its dispatch/completion times, batch, and the degradation-ladder rung it
was served at) or rejected (with the 429-style reason).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "COMPLETED",
    "REJECTED",
    "REJECT_QUEUE_FULL",
    "REJECT_RATE_LIMITED",
    "Request",
    "RequestRecord",
]

#: Outcome of a request that was served to completion.
COMPLETED = "completed"
#: Outcome of a request the admission controller turned away.
REJECTED = "rejected"

#: Reject reason: the pending queue was at its configured bound.
REJECT_QUEUE_FULL = "queue-full"
#: Reject reason: the token-bucket rate limiter was empty.
REJECT_RATE_LIMITED = "rate-limited"


@dataclass(frozen=True)
class Request:
    """One inference request.

    Attributes:
        rid: trace-unique id, assigned in arrival order.
        model: registered benchmark model name (``repro.models``).
        arrival_cycle: arrival time in simulated cycles.
        workload_seed: seed of this request's sparsity/workload draw --
            requests with the same seed are the same input sample.
    """

    rid: int
    model: str
    arrival_cycle: int
    workload_seed: int

    def __post_init__(self):
        if self.arrival_cycle < 0:
            raise ValueError(
                f"Request.arrival_cycle must be >= 0, got {self.arrival_cycle}"
            )


@dataclass
class RequestRecord:
    """Final account of one request.

    Attributes:
        request: the request this record closes.
        outcome: :data:`COMPLETED` or :data:`REJECTED`.
        reject_reason: :data:`REJECT_QUEUE_FULL` / :data:`REJECT_RATE_LIMITED`
            when rejected, else None.
        stage: degradation-ladder rung the request was served at
            (``DUET``..``OS``); None when rejected.
        batch_size: size of the dispatched batch the request rode in.
        dispatch_cycle: cycle its batch started service.
        completion_cycle: cycle its batch finished service.
    """

    request: Request
    outcome: str
    reject_reason: str | None = None
    stage: str | None = None
    batch_size: int | None = None
    dispatch_cycle: int | None = None
    completion_cycle: int | None = None

    @property
    def completed(self) -> bool:
        """True when the request was served to completion."""
        return self.outcome == COMPLETED

    @property
    def queue_cycles(self) -> int:
        """Cycles spent waiting in the batcher before dispatch."""
        if self.dispatch_cycle is None:
            raise ValueError(f"request {self.request.rid} was never dispatched")
        return self.dispatch_cycle - self.request.arrival_cycle

    @property
    def latency_cycles(self) -> int:
        """End-to-end cycles from arrival to batch completion."""
        if self.completion_cycle is None:
            raise ValueError(f"request {self.request.rid} never completed")
        return self.completion_cycle - self.request.arrival_cycle
