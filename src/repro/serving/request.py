"""Request and outcome records of the serving tier.

A :class:`Request` is one inference job arriving at the serving front
end: a registered benchmark model plus a per-request workload seed (the
sparsity draw standing in for "this user's input sample").  All times are
integer **simulated accelerator cycles** at the hardware clock
(:attr:`repro.sim.config.DuetConfig.clock_hz`, 1 GHz default, so one
cycle is one nanosecond) -- the whole serving simulation is
discrete-event and therefore exactly reproducible.

A :class:`RequestRecord` is the request's final account: completed (with
its dispatch/completion times, batch, and the degradation-ladder rung it
was served at), rejected (with the 429-style reason), or -- under the
fault-tolerant simulator only -- failed (admitted, but every attempt the
policy allowed was lost to worker faults; the 503-style terminal reason
names what exhausted it).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "COMPLETED",
    "REJECTED",
    "FAILED",
    "REJECT_QUEUE_FULL",
    "REJECT_RATE_LIMITED",
    "FAIL_ATTEMPTS_EXHAUSTED",
    "FAIL_DEADLINE",
    "Request",
    "RequestRecord",
]

#: Outcome of a request that was served to completion.
COMPLETED = "completed"
#: Outcome of a request the admission controller turned away.
REJECTED = "rejected"
#: Outcome of an admitted request whose every allowed attempt was lost to
#: worker faults (fault-tolerant simulator only).
FAILED = "failed"

#: Reject reason: the pending queue was at its configured bound.
REJECT_QUEUE_FULL = "queue-full"
#: Reject reason: the token-bucket rate limiter was empty.
REJECT_RATE_LIMITED = "rate-limited"

#: Fail reason: the retry budget ran out before any attempt completed.
FAIL_ATTEMPTS_EXHAUSTED = "attempts-exhausted"
#: Fail reason: the per-request deadline passed with no completion.
FAIL_DEADLINE = "deadline"


@dataclass(frozen=True)
class Request:
    """One inference request.

    Attributes:
        rid: trace-unique id, assigned in arrival order.
        model: registered benchmark model name (``repro.models``).
        arrival_cycle: arrival time in simulated cycles.
        workload_seed: seed of this request's sparsity/workload draw --
            requests with the same seed are the same input sample.
    """

    rid: int
    model: str
    arrival_cycle: int
    workload_seed: int

    def __post_init__(self):
        if self.arrival_cycle < 0:
            raise ValueError(
                f"Request.arrival_cycle must be >= 0, got {self.arrival_cycle}"
            )


@dataclass
class RequestRecord:
    """Final account of one request.

    Attributes:
        request: the request this record closes.
        outcome: :data:`COMPLETED`, :data:`REJECTED`, or :data:`FAILED`.
        reject_reason: :data:`REJECT_QUEUE_FULL` / :data:`REJECT_RATE_LIMITED`
            when rejected, the ``FAIL_*`` terminal reason when failed,
            else None.
        stage: degradation-ladder rung the request was served at
            (``DUET``..``OS``); None when rejected or failed.
        batch_size: size of the dispatched batch the request rode in.
        dispatch_cycle: cycle its batch started service.
        completion_cycle: cycle its batch finished service when
            completed; the cycle the terminal failure verdict was
            rendered when failed (the client stopped waiting then).
        attempts: dispatch attempts the fault-tolerant simulator made
            (0 under the plain simulator, which needs exactly one and
            does not track them).
        hedged: True when any dispatch for this request was a hedge
            re-dispatch (whether or not the hedge won -- hedge dispatches
            count in ``attempts``, so accounting needs this even when a
            plain retry ultimately completed or the request failed).
        handed_back: dispatches a worker eviction handed back to the
            queue.  Each hand-back refunds the retry budget (the loss
            was the server's fault) but still counts in ``attempts``,
            so ``attempts`` may exceed the budget by exactly this many.
        exit: early-exit head the request was served at (``"full"`` for
            the complete backbone); None when the model has no
            registered exit variant or the executor is not exit-aware.
        exit_depth: backbone-MAC fraction executed (1.0 = full depth).
        quality_drop: estimated accuracy delta the chosen exit cost
            (0.0 at full depth or for static models).
    """

    request: Request
    outcome: str
    reject_reason: str | None = None
    stage: str | None = None
    batch_size: int | None = None
    dispatch_cycle: int | None = None
    completion_cycle: int | None = None
    attempts: int = 0
    hedged: bool = False
    handed_back: int = 0
    exit: str | None = None
    exit_depth: float = 1.0
    quality_drop: float = 0.0

    @property
    def exited_early(self) -> bool:
        """True when the request was served at a side exit."""
        return self.exit is not None and self.exit != "full"

    @property
    def completed(self) -> bool:
        """True when the request was served to completion."""
        return self.outcome == COMPLETED

    @property
    def failed(self) -> bool:
        """True when the request was admitted but terminally failed."""
        return self.outcome == FAILED

    @property
    def queue_cycles(self) -> int:
        """Cycles spent waiting in the batcher before dispatch."""
        if self.dispatch_cycle is None:
            raise ValueError(f"request {self.request.rid} was never dispatched")
        return self.dispatch_cycle - self.request.arrival_cycle

    @property
    def latency_cycles(self) -> int:
        """End-to-end cycles from arrival to batch completion."""
        if self.completion_cycle is None:
            raise ValueError(f"request {self.request.rid} never completed")
        return self.completion_cycle - self.request.arrival_cycle
