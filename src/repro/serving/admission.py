"""Admission control: token-bucket rate limiting + queue-depth shedding.

The front door of the serving tier.  Two independent checks run on every
arrival, and either produces a 429-style reject:

1. **Token bucket** (optional): a bucket of ``burst`` tokens refilled at
   ``rate_limit_rps`` tokens per simulated second.  An arrival that finds
   the bucket empty is rejected :data:`~repro.serving.request.REJECT_RATE_LIMITED`.
   This caps the *sustained* rate a tenant can push while absorbing short
   bursts up to the bucket size.
2. **Queue bound**: an arrival that would push the batcher's pending
   depth past ``max_queue_depth`` is rejected
   :data:`~repro.serving.request.REJECT_QUEUE_FULL`.  Bounding the queue
   bounds the worst-case queueing delay -- an unbounded queue converts
   overload into unbounded latency, which for interactive inference is
   just a slower way to fail.

The queue-bound check is the serving tier's hard invariant: the pending
queue **never** exceeds ``max_queue_depth`` (property-tested in
``tests/serving/test_server.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.request import REJECT_QUEUE_FULL, REJECT_RATE_LIMITED

__all__ = ["AdmissionConfig", "AdmissionController", "TokenBucket"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs.

    Attributes:
        max_queue_depth: hard bound on the batcher's pending depth.
        rate_limit_rps: sustained token-bucket refill rate in requests
            per simulated second; ``None`` disables rate limiting.
        burst: token-bucket capacity (maximum burst admitted at once).
    """

    max_queue_depth: int = 64
    rate_limit_rps: float | None = None
    burst: int = 16

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ValueError(
                f"AdmissionConfig.max_queue_depth must be >= 1, got "
                f"{self.max_queue_depth}"
            )
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ValueError(
                f"AdmissionConfig.rate_limit_rps must be positive, got "
                f"{self.rate_limit_rps}"
            )
        if self.burst < 1:
            raise ValueError(
                f"AdmissionConfig.burst must be >= 1, got {self.burst}"
            )


class TokenBucket:
    """A token bucket over simulated cycles.

    Args:
        rate_per_cycle: tokens refilled per cycle.
        burst: bucket capacity; the bucket starts full.
    """

    def __init__(self, rate_per_cycle: float, burst: int):
        if rate_per_cycle <= 0:
            raise ValueError(
                f"TokenBucket.rate_per_cycle must be positive, got "
                f"{rate_per_cycle}"
            )
        self.rate_per_cycle = rate_per_cycle
        self.burst = burst
        self._tokens = float(burst)
        self._last_cycle = 0

    def take(self, now_cycle: int) -> bool:
        """Consume one token at ``now_cycle``; False when the bucket is dry."""
        elapsed = now_cycle - self._last_cycle
        if elapsed > 0:
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate_per_cycle
            )
            self._last_cycle = now_cycle
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class AdmissionController:
    """Stateful admission decisions for one serving run.

    Attributes:
        config: the admission knobs.
        clock_hz: simulated clock (converts ``rate_limit_rps`` to a
            per-cycle refill rate).
        offered / admitted: running arrival counters.
        rejects_by_reason: per-reason reject counters.
    """

    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    clock_hz: float = 1e9
    offered: int = 0
    admitted: int = 0
    rejects_by_reason: dict = field(default_factory=dict)

    def __post_init__(self):
        self._bucket = None
        if self.config.rate_limit_rps is not None:
            self._bucket = TokenBucket(
                rate_per_cycle=self.config.rate_limit_rps / self.clock_hz,
                burst=self.config.burst,
            )

    def admit(self, now_cycle: int, queue_depth: int) -> str | None:
        """Decide one arrival; returns None (admitted) or the reject reason.

        Args:
            now_cycle: arrival time.
            queue_depth: the batcher's pending depth *before* this
                arrival is queued.
        """
        self.offered += 1
        if self._bucket is not None and not self._bucket.take(now_cycle):
            return self._reject(REJECT_RATE_LIMITED)
        if queue_depth >= self.config.max_queue_depth:
            return self._reject(REJECT_QUEUE_FULL)
        self.admitted += 1
        return None

    def _reject(self, reason: str) -> str:
        self.rejects_by_reason[reason] = self.rejects_by_reason.get(reason, 0) + 1
        return reason
