"""SLO accounting: latency percentiles, throughput, reject/degrade rates.

Everything here is computed from the closed
:class:`~repro.serving.request.RequestRecord` set of one serving run, in
simulated time only -- no wall clocks -- so a summary (and the JSON bench
document built from it) is byte-identical across repeated runs of the
same seed and trace.

Percentiles use the **nearest-rank** definition (the smallest recorded
value with at least ``q``% of samples at or below it): standard for
latency SLOs, exact on small samples, and free of interpolation noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.reporting import format_percent
from repro.serving.overload import SERVING_LADDER
from repro.serving.request import RequestRecord

__all__ = ["SloSummary", "percentile", "summarize"]

#: The percentile points every summary reports.
_POINTS = (50, 95, 99)


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values.

    Args:
        sorted_values: non-empty, ascending.
        q: percentile in (0, 100].
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[rank - 1]


def _distribution(values_ms: list[float]) -> dict:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds."""
    if not values_ms:
        return {f"p{q}": None for q in _POINTS} | {"mean": None, "max": None}
    ordered = sorted(values_ms)
    dist = {f"p{q}": percentile(ordered, q) for q in _POINTS}
    dist["mean"] = sum(ordered) / len(ordered)
    dist["max"] = ordered[-1]
    return dist


@dataclass(frozen=True)
class SloSummary:
    """The SLO account of one serving run.

    Attributes:
        offered / completed / rejected: request counters.
        reject_rate: rejected / offered.
        rejects_by_reason: 429-style reason -> count.
        duration_ms: simulated makespan (first arrival to last event).
        throughput_rps: completed requests per simulated second.
        latency_ms: end-to-end latency distribution (p50/p95/p99/mean/max).
        queue_ms: queueing-delay distribution (same points).
        batches: number of dispatches.
        mean_batch_size: completed / batches.
        stage_counts: serving-ladder rung -> completed requests served
            there (every rung listed, zeros included).
        degraded: completed requests served below the top rung.
        degrade_rate: degraded / completed.
        early_exits: completed requests served at an early-exit head
            (quality shedding; 0 when the run was static or always-late).
        early_exit_rate: early_exits / completed.
        mean_exit_depth: mean backbone-depth fraction over completed
            requests (1.0 for static / always-late runs).
        mean_quality_drop: mean estimated accuracy delta over completed
            requests (0.0 for static / always-late runs).
    """

    offered: int
    completed: int
    rejected: int
    reject_rate: float
    rejects_by_reason: dict
    duration_ms: float
    throughput_rps: float
    latency_ms: dict
    queue_ms: dict
    batches: int
    mean_batch_size: float
    stage_counts: dict
    degraded: int
    degrade_rate: float
    early_exits: int = 0
    early_exit_rate: float = 0.0
    mean_exit_depth: float = 1.0
    mean_quality_drop: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready form (insertion-ordered, deterministic)."""
        return {
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "reject_rate": self.reject_rate,
            "rejects_by_reason": dict(sorted(self.rejects_by_reason.items())),
            "duration_ms": self.duration_ms,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency_ms,
            "queue_ms": self.queue_ms,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "stage_counts": dict(self.stage_counts),
            "degraded": self.degraded,
            "degrade_rate": self.degrade_rate,
            "early_exits": self.early_exits,
            "early_exit_rate": self.early_exit_rate,
            "mean_exit_depth": self.mean_exit_depth,
            "mean_quality_drop": self.mean_quality_drop,
        }

    def format(self) -> str:
        """Multi-line plain-text rendering for the CLI."""

        def dist(d: dict) -> str:
            if d["p50"] is None:
                return "n/a"
            return (
                f"p50 {d['p50']:8.3f} ms  p95 {d['p95']:8.3f} ms  "
                f"p99 {d['p99']:8.3f} ms  (mean {d['mean']:.3f}, "
                f"max {d['max']:.3f})"
            )

        lines = [
            f"  offered    : {self.offered} requests, {self.completed} "
            f"completed, {self.rejected} rejected "
            f"({format_percent(self.reject_rate)})",
            f"  latency    : {dist(self.latency_ms)}",
            f"  queue wait : {dist(self.queue_ms)}",
            f"  throughput : {self.throughput_rps:.1f} req/s over "
            f"{self.duration_ms:.1f} ms simulated",
            f"  batching   : {self.batches} dispatches, mean size "
            f"{self.mean_batch_size:.2f}",
        ]
        stages = "  ".join(
            f"{stage}={self.stage_counts.get(stage, 0)}"
            for stage in SERVING_LADDER
        )
        lines.append(
            f"  stages     : {stages}  (degraded {self.degraded}, "
            f"{format_percent(self.degrade_rate)})"
        )
        if self.early_exits:
            lines.append(
                f"  quality    : {self.early_exits} early exits "
                f"({format_percent(self.early_exit_rate)}), mean depth "
                f"{self.mean_exit_depth:.3f}, mean est. accuracy drop "
                f"{format_percent(self.mean_quality_drop)}"
            )
        if self.rejects_by_reason:
            reasons = "  ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.rejects_by_reason.items())
            )
            lines.append(f"  rejects    : {reasons}")
        return "\n".join(lines)


def summarize(
    records: list[RequestRecord],
    clock_hz: float = 1e9,
    ladder: tuple[str, ...] = SERVING_LADDER,
) -> SloSummary:
    """Fold a run's closed records into its :class:`SloSummary`."""
    to_ms = lambda cycles: cycles / clock_hz * 1e3  # noqa: E731
    completed = [r for r in records if r.completed]
    rejected = [r for r in records if not r.completed]
    rejects_by_reason: dict = {}
    for r in rejected:
        reason = r.reject_reason or "unknown"
        rejects_by_reason[reason] = rejects_by_reason.get(reason, 0) + 1

    start = min((r.request.arrival_cycle for r in records), default=0)
    end = max(
        (
            r.completion_cycle if r.completion_cycle is not None
            else r.request.arrival_cycle
            for r in records
        ),
        default=0,
    )
    duration_cycles = max(end - start, 0)
    duration_s = duration_cycles / clock_hz

    batches = sum(1.0 / r.batch_size for r in completed if r.batch_size)
    batches = int(round(batches))
    stage_counts = {stage: 0 for stage in ladder}
    for r in completed:
        if r.stage is not None:
            stage_counts[r.stage] = stage_counts.get(r.stage, 0) + 1
    degraded = sum(
        count for stage, count in stage_counts.items() if stage != ladder[0]
    )
    early_exits = sum(1 for r in completed if r.exited_early)

    return SloSummary(
        offered=len(records),
        completed=len(completed),
        rejected=len(rejected),
        reject_rate=len(rejected) / len(records) if records else 0.0,
        rejects_by_reason=rejects_by_reason,
        duration_ms=to_ms(duration_cycles),
        throughput_rps=len(completed) / duration_s if duration_s > 0 else 0.0,
        latency_ms=_distribution([to_ms(r.latency_cycles) for r in completed]),
        queue_ms=_distribution([to_ms(r.queue_cycles) for r in completed]),
        batches=batches,
        mean_batch_size=len(completed) / batches if batches else 0.0,
        stage_counts=stage_counts,
        degraded=degraded,
        degrade_rate=degraded / len(completed) if completed else 0.0,
        early_exits=early_exits,
        early_exit_rate=early_exits / len(completed) if completed else 0.0,
        mean_exit_depth=(
            sum(r.exit_depth for r in completed) / len(completed)
            if completed
            else 1.0
        ),
        mean_quality_drop=(
            sum(r.quality_drop for r in completed) / len(completed)
            if completed
            else 0.0
        ),
    )
