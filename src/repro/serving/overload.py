"""Overload shedding: map queue occupancy onto the degradation ladder.

The serving tier reuses the reliability subsystem's stage ladder
(:data:`repro.reliability.degrade.DEGRADATION_LADDER`) as its overload
response: as the pending queue fills, dispatched batches are served at
progressively lower rungs -- ``DUET -> IOS -> BOS -> OS`` -- *before* the
admission controller starts rejecting at the queue bound.  ``BASE`` is
deliberately excluded: it is the fault-containment rung (Speculator fully
out of the loop) and overload is not a fault.

Stepping down the ladder sheds the Speculator's most power-hungry
machinery first -- adaptive mapping's Reorder Unit, then IMap
generation/transport -- which keeps a saturated chip inside its sustained
power envelope and shrinks the surface the online guards must police
exactly when queue pressure leaves the least slack for recovery work.
The trade is explicit and honest: lower rungs compute *more* outputs
exactly (quality never degrades below the accurate module) at somewhat
higher per-request latency, so the real overload relief comes from
batching and admission control; the ladder bounds speculative machinery
under pressure.  Sharing one ladder with the reliability subsystem means
operators reason about a single monotone degradation axis
(``docs/serving.md``).

Unlike the reliability policy -- monotone for a whole run because silicon
faults do not heal -- the overload rung tracks queue occupancy in both
directions: load is transient.  Monotonicity here is *in occupancy*:
``stage_for`` never returns a higher-capability rung for a deeper queue
(property-tested in ``tests/serving/test_server.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliability.degrade import DEGRADATION_LADDER

__all__ = ["SERVING_LADDER", "OverloadPolicy"]

#: Overload rungs: the reliability ladder minus its fail-safe BASE rung.
SERVING_LADDER: tuple[str, ...] = DEGRADATION_LADDER[:-1]

if SERVING_LADDER != ("DUET", "IOS", "BOS", "OS"):  # pragma: no cover
    raise ImportError(
        f"repro.serving assumes the reliability ladder ends at BASE; got "
        f"{DEGRADATION_LADDER}"
    )


@dataclass(frozen=True)
class OverloadPolicy:
    """Occupancy thresholds selecting the serving rung.

    Attributes:
        thresholds: ascending occupancy fractions; a dispatch whose queue
            occupancy (pending depth / ``max_queue_depth``) exceeds the
            i-th threshold is served at least ``i+1`` rungs down.  Set
            every threshold to 1.0 to disable shedding (occupancy never
            strictly exceeds 1.0 -- the queue is bounded).
    """

    thresholds: tuple[float, ...] = (0.5, 0.7, 0.85)

    def __post_init__(self):
        if len(self.thresholds) != len(SERVING_LADDER) - 1:
            raise ValueError(
                f"OverloadPolicy.thresholds needs {len(SERVING_LADDER) - 1} "
                f"entries (one per step of {SERVING_LADDER}), got "
                f"{len(self.thresholds)}"
            )
        if list(self.thresholds) != sorted(self.thresholds):
            raise ValueError(
                f"OverloadPolicy.thresholds must be ascending, got "
                f"{self.thresholds}"
            )
        for t in self.thresholds:
            if not 0.0 < t <= 1.0:
                raise ValueError(
                    f"OverloadPolicy.thresholds must lie in (0, 1], got {t}"
                )

    @classmethod
    def disabled(cls) -> "OverloadPolicy":
        """A policy that always serves at full DUET capability."""
        return cls(thresholds=(1.0,) * (len(SERVING_LADDER) - 1))

    def stage_for(self, queue_depth: int, queue_bound: int) -> str:
        """The rung for a dispatch decided at ``queue_depth`` pending
        requests under a ``queue_bound``-deep queue.  Monotone: deeper
        queue, never a higher-capability rung."""
        if queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {queue_bound}")
        occupancy = queue_depth / queue_bound
        rung = sum(occupancy > t for t in self.thresholds)
        return SERVING_LADDER[rung]
