"""Async batched serving front end for the simulated DUET accelerator.

Models million-user inference traffic end to end on the fast-path
simulator: a seeded open-loop load generator feeds an admission
controller (token bucket + bounded queue with 429-style rejects), a
dynamic batcher (max-batch / max-wait microbatching, one FIFO per
model), and a pool of N simulated :class:`~repro.sim.DuetAccelerator`
workers that shed capability down the reliability subsystem's ladder
(``DUET -> IOS -> BOS -> OS``) under queue pressure before anything is
rejected.  Every run closes with a full SLO account -- p50/p95/p99
latency, throughput, reject and degrade rates, per-rung serve counts.

Entry points:

- :func:`simulate_serving` / :class:`ServingSimulator` -- replay a trace.
- :func:`generate_trace` -- seeded Poisson / bursty arrival traces.
- ``python -m repro serve`` -- one campaign, human-readable SLO report.
- ``python -m repro loadgen`` -- the scenario campaign behind
  ``BENCH_serving.json`` (:mod:`repro.bench.serving`).

See ``docs/serving.md`` for the queueing model and SLO semantics.
"""

from repro.serving.admission import AdmissionConfig, AdmissionController, TokenBucket
from repro.serving.batcher import BatchPolicy, DynamicBatcher
from repro.serving.loadgen import ARRIVAL_PROCESSES, TraceConfig, generate_trace
from repro.serving.overload import SERVING_LADDER, OverloadPolicy
from repro.serving.request import (
    COMPLETED,
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMITED,
    REJECTED,
    Request,
    RequestRecord,
)
from repro.serving.server import (
    ServerConfig,
    ServingResult,
    ServingSimulator,
    simulate_serving,
)
from repro.serving.slo import SloSummary, percentile, summarize
from repro.serving.workers import BatchExecutor, BatchResult, ServiceModel, WorkerPool

__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionConfig",
    "AdmissionController",
    "BatchExecutor",
    "BatchPolicy",
    "BatchResult",
    "COMPLETED",
    "DynamicBatcher",
    "OverloadPolicy",
    "REJECTED",
    "REJECT_QUEUE_FULL",
    "REJECT_RATE_LIMITED",
    "Request",
    "RequestRecord",
    "SERVING_LADDER",
    "ServerConfig",
    "ServiceModel",
    "ServingResult",
    "ServingSimulator",
    "SloSummary",
    "TokenBucket",
    "TraceConfig",
    "WorkerPool",
    "generate_trace",
    "percentile",
    "simulate_serving",
    "summarize",
]
