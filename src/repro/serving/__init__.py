"""Async batched serving front end for the simulated DUET accelerator.

Models million-user inference traffic end to end on the fast-path
simulator: a seeded open-loop load generator feeds an admission
controller (token bucket + bounded queue with 429-style rejects), a
dynamic batcher (max-batch / max-wait microbatching, one FIFO per
model), and a pool of N simulated :class:`~repro.sim.DuetAccelerator`
workers that shed capability down the reliability subsystem's ladder
(``DUET -> IOS -> BOS -> OS``) under queue pressure before anything is
rejected.  Every run closes with a full SLO account -- p50/p95/p99
latency, throughput, reject and degrade rates, per-rung serve counts.

Entry points:

- :func:`simulate_serving` / :class:`ServingSimulator` -- replay a trace.
- :func:`simulate_chaos` / :class:`FaultTolerantSimulator` -- the same
  front end over a *faulty* fleet (crash/hang/straggle) with retries,
  hedging, circuit breakers, and health-checked respawn
  (:mod:`repro.serving.faulttol`).
- :func:`simulate_fleet` / :class:`FleetSimulator` -- the fleet tier:
  N sharded servers (:mod:`repro.sim.sharding`) behind a router
  with per-model SLO classes, priority scheduling, occupancy-driven
  autoscaling, and closed-loop clients (:mod:`repro.serving.fleet`).
- :func:`generate_trace` -- seeded Poisson / bursty arrival traces.
- ``python -m repro serve`` -- one campaign, human-readable SLO report.
- ``python -m repro loadgen`` -- the scenario campaign behind
  ``BENCH_serving.json`` (:mod:`repro.bench.serving`).
- ``python -m repro chaos`` -- the fault-rate x policy campaign behind
  ``BENCH_chaos.json`` (:mod:`repro.bench.chaos`).
- ``python -m repro fleet`` -- the fleet scenario campaign behind
  ``BENCH_fleet.json`` (:mod:`repro.bench.fleet`).

See ``docs/serving.md`` for the queueing model and SLO semantics, and
``docs/fault_tolerance.md`` for the fault model and recovery machinery.
"""

from repro.serving.admission import AdmissionConfig, AdmissionController, TokenBucket
from repro.serving.batcher import BatchPolicy, DynamicBatcher
from repro.serving.faulttol import (
    POLICY_LADDER,
    BreakerPolicy,
    FaultTolerancePolicy,
    FaultTolerantSimulator,
    HealthPolicy,
    HedgePolicy,
    RetryPolicy,
    policy_named,
)
from repro.serving.fleet import (
    DEFAULT_SLO_CLASSES,
    AutoscalerPolicy,
    FleetConfig,
    FleetSimulator,
    PriorityBatcher,
    SloClass,
    initial_fleet_size,
    simulate_fleet,
)
from repro.serving.loadgen import (
    ARRIVAL_PROCESSES,
    ClosedLoopConfig,
    TraceConfig,
    generate_trace,
)
from repro.serving.overload import SERVING_LADDER, OverloadPolicy
from repro.serving.quality import QualityPolicy
from repro.serving.request import (
    COMPLETED,
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMITED,
    REJECTED,
    Request,
    RequestRecord,
)
from repro.serving.server import (
    ServerConfig,
    ServingSimulator,
    simulate_serving,
)
from repro.sim.sharding import (
    GlbPartition,
    ShardPlan,
    ShardedExecutor,
    glb_partition,
    partition_layers,
    plan_for,
)
from repro.serving.slo import percentile, summarize
from repro.sim.batching import BatchExecutor, BatchResult, WorkerPool

__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionConfig",
    "AdmissionController",
    "AutoscalerPolicy",
    "BatchExecutor",
    "BatchPolicy",
    "BatchResult",
    "BreakerPolicy",
    "COMPLETED",
    "ClosedLoopConfig",
    "DEFAULT_SLO_CLASSES",
    "DynamicBatcher",
    "FaultTolerancePolicy",
    "FaultTolerantSimulator",
    "FleetConfig",
    "FleetSimulator",
    "GlbPartition",
    "HealthPolicy",
    "HedgePolicy",
    "OverloadPolicy",
    "POLICY_LADDER",
    "PriorityBatcher",
    "QualityPolicy",
    "REJECTED",
    "REJECT_QUEUE_FULL",
    "REJECT_RATE_LIMITED",
    "Request",
    "RequestRecord",
    "RetryPolicy",
    "SERVING_LADDER",
    "ServerConfig",
    "ServingSimulator",
    "ShardPlan",
    "ShardedExecutor",
    "SloClass",
    "TokenBucket",
    "TraceConfig",
    "WorkerPool",
    "generate_trace",
    "glb_partition",
    "initial_fleet_size",
    "partition_layers",
    "percentile",
    "plan_for",
    "policy_named",
    "simulate_fleet",
    "simulate_serving",
    "summarize",
]
