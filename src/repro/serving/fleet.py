"""Fleet-scale serving: a router over N sharded servers with SLO-class
priority scheduling and occupancy-driven autoscaling.

One :class:`FleetSimulator` models the production tier above the
single-queue simulator (:mod:`repro.serving.server`):

- **Servers are shard groups.**  Every server is one replica of the
  model placement: a group of simulated chips joined by a
  :class:`~repro.sim.sharding.ShardPlan` per model (pipeline or
  tensor split, GLB co-location), priced by one shared
  :class:`~repro.sim.sharding.ShardedExecutor` so every replica's
  cost model -- and its memoized per-sample reports -- agree.
- **The router schedules by SLO class.**  Each model maps to an
  :class:`SloClass` (a latency target and a priority, the
  latency-vs-quality service-class framing of D²NN, arXiv:1701.00299);
  the :class:`PriorityBatcher` always dispatches the highest-priority
  dispatchable queue, breaking ties by head arrival (FIFO fairness
  within a class).
- **The fleet autoscales on measured queue occupancy.**  At every
  evaluation interval the :class:`AutoscalerPolicy` compares pending
  depth / queue bound against its thresholds: sustained pressure spawns
  a new server (ready after a startup delay), sustained idleness
  retires an idle one; a cooldown keeps the loop from flapping.  Every
  decision is recorded as a scale event.
- **Clients can close the loop.**  Besides replaying open-loop traces,
  the simulator drives a
  :class:`~repro.serving.loadgen.ClosedLoopConfig` population whose
  members re-issue only after their previous request closed plus an
  exponential think pause.

Everything runs on the integer event clock and every quantity is a pure
function of (configuration, seeds): same inputs, byte-identical
:class:`FleetResult` (see ``tests/serving/test_fleet.py``).  Initial
fleet sizing comes from measured capacity -- see
:func:`initial_fleet_size` and the ``BENCH_serving.json`` feed in
:mod:`repro.bench.fleet`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.dynamic.decision import ALWAYS_LATE
from repro.dynamic.executor import DynamicShardedExecutor
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.batcher import BatchPolicy, DynamicBatcher
from repro.serving.loadgen import ClosedLoopConfig, TraceConfig, generate_trace
from repro.serving.overload import OverloadPolicy
from repro.serving.quality import QualityPolicy, decision_record_fields
from repro.serving.request import COMPLETED, REJECTED, Request, RequestRecord
from repro.sim.sharding import ShardedExecutor
from repro.serving.slo import SloSummary, percentile, summarize
from repro.sim.config import DuetConfig

__all__ = [
    "AutoscalerPolicy",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "PriorityBatcher",
    "SloClass",
    "DEFAULT_SLO_CLASSES",
    "initial_fleet_size",
    "simulate_fleet",
]

_ARRIVAL, _DONE, _FLUSH, _EVAL, _UP = 0, 1, 2, 3, 4


def _cycles(us: float, clock_hz: float) -> int:
    """Microseconds -> integer simulated cycles."""
    return int(round(us * 1e-6 * clock_hz))


@dataclass(frozen=True)
class SloClass:
    """One service class: a latency target and a scheduling priority.

    Attributes:
        name: class label (e.g. ``"interactive"``).
        target_ms: end-to-end latency target; completions within it
            count as goodput.
        priority: scheduling rank, lower dispatches first.
        sheddable: whether the quality axis may serve this class at
            early exits under pressure; non-sheddable classes always run
            full depth regardless of the fleet's quality policy.
    """

    name: str
    target_ms: float
    priority: int = 0
    sheddable: bool = True

    def __post_init__(self):
        if not self.name:
            raise ValueError("SloClass.name must be non-empty")
        if self.target_ms <= 0:
            raise ValueError(
                f"SloClass.target_ms must be positive, got {self.target_ms}"
            )
        if self.priority < 0:
            raise ValueError(
                f"SloClass.priority must be >= 0, got {self.priority}"
            )


#: Default service classes: latency-sensitive interactive traffic ahead
#: of throughput-oriented bulk traffic.
DEFAULT_SLO_CLASSES = (
    SloClass(name="interactive", target_ms=30.0, priority=0),
    SloClass(name="bulk", target_ms=200.0, priority=1),
)


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Occupancy-driven scale-out/in policy.

    Attributes:
        min_servers / max_servers: fleet-size bounds (scaling disabled
            when equal).
        scale_out_occupancy: queue occupancy (pending depth / queue
            bound) above which an evaluation requests a new server; the
            default matches the overload ladder's first shedding
            threshold, so capacity grows as soon as quality starts
            degrading.
        scale_in_occupancy: occupancy below which an evaluation retires
            an idle server.
        eval_interval_us: evaluation period in simulated microseconds.
        cooldown_evals: evaluations that must pass after a scale
            decision before the next one (anti-flapping).
        startup_us: delay between requesting a server and it joining
            the idle pool (model load + warmup).
    """

    min_servers: int = 1
    max_servers: int = 4
    scale_out_occupancy: float = 0.5
    scale_in_occupancy: float = 0.15
    eval_interval_us: float = 1000.0
    cooldown_evals: int = 2
    startup_us: float = 5000.0

    def __post_init__(self):
        if self.min_servers < 1:
            raise ValueError(
                f"AutoscalerPolicy.min_servers must be >= 1, got "
                f"{self.min_servers}"
            )
        if self.max_servers < self.min_servers:
            raise ValueError(
                f"AutoscalerPolicy.max_servers ({self.max_servers}) must be "
                f">= min_servers ({self.min_servers})"
            )
        if not 0.0 < self.scale_out_occupancy <= 1.0:
            raise ValueError(
                f"AutoscalerPolicy.scale_out_occupancy must be in (0, 1], "
                f"got {self.scale_out_occupancy}"
            )
        if not 0.0 <= self.scale_in_occupancy < self.scale_out_occupancy:
            raise ValueError(
                "AutoscalerPolicy.scale_in_occupancy must be in [0, "
                f"scale_out_occupancy), got {self.scale_in_occupancy}"
            )
        if self.eval_interval_us <= 0:
            raise ValueError(
                f"AutoscalerPolicy.eval_interval_us must be positive, got "
                f"{self.eval_interval_us}"
            )
        if self.cooldown_evals < 0:
            raise ValueError(
                f"AutoscalerPolicy.cooldown_evals must be >= 0, got "
                f"{self.cooldown_evals}"
            )
        if self.startup_us < 0:
            raise ValueError(
                f"AutoscalerPolicy.startup_us must be >= 0, got "
                f"{self.startup_us}"
            )

    @classmethod
    def fixed(cls, servers: int) -> "AutoscalerPolicy":
        """A policy that pins the fleet at exactly ``servers`` replicas."""
        return cls(min_servers=servers, max_servers=servers)

    @property
    def enabled(self) -> bool:
        """Whether the fleet size can actually change."""
        return self.max_servers > self.min_servers


def initial_fleet_size(
    rate_rps: float, server_capacity_rps: float, policy: AutoscalerPolicy
) -> int:
    """Servers to start with, from offered load and measured capacity.

    The placement feed: ``server_capacity_rps`` comes from the measured
    ``BENCH_serving.json`` batched-capacity scenario (see
    :func:`repro.bench.fleet.serving_capacity_rps`), and the initial
    fleet covers the offered rate at that capacity, clamped to the
    autoscaler's bounds.

    Args:
        rate_rps: offered arrival rate.
        server_capacity_rps: measured per-server completion capacity.
        policy: the fleet's autoscaler bounds.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if server_capacity_rps <= 0:
        raise ValueError(
            f"server_capacity_rps must be positive, got {server_capacity_rps}"
        )
    needed = math.ceil(rate_rps / server_capacity_rps)
    return min(max(needed, policy.min_servers), policy.max_servers)


class PriorityBatcher(DynamicBatcher):
    """A :class:`~repro.serving.batcher.DynamicBatcher` that dispatches
    by SLO-class priority.

    Among dispatchable model queues the one whose class has the lowest
    priority rank wins; within a rank, the oldest head arrival (the
    parent's FIFO-fairness rule); remaining ties break on the model
    name for full determinism.

    Args:
        policy: dispatch policy.
        clock_hz: simulated clock.
        priorities: model name -> priority rank (missing models rank
            after every explicit entry).
    """

    def __init__(
        self,
        policy: BatchPolicy | None = None,
        clock_hz: float = 1e9,
        priorities: dict | None = None,
    ):
        super().__init__(policy, clock_hz=clock_hz)
        self.priorities = dict(priorities) if priorities else {}
        self._default_rank = (
            max(self.priorities.values()) + 1 if self.priorities else 0
        )

    def pop_batch(self, now_cycle: int) -> list[Request] | None:
        best_key = None
        best_model = None
        for model, queue in self._queues.items():
            if not self._dispatchable(queue, now_cycle):
                continue
            key = (
                self.priorities.get(model, self._default_rank),
                queue[0].arrival_cycle,
                model,
            )
            if best_key is None or key < best_key:
                best_key, best_model = key, model
        if best_model is None:
            return None
        queue = self._queues[best_model]
        batch = [
            queue.popleft()
            for _ in range(min(len(queue), self.policy.max_batch))
        ]
        if not queue:
            del self._queues[best_model]
        self.depth -= len(batch)
        return batch


@dataclass(frozen=True)
class FleetConfig:
    """Full configuration of the fleet tier.

    Attributes:
        slo_classes: the service classes (distinct names).
        model_classes: model name -> SLO-class name; unmapped models
            fall into the *last* (lowest-priority) class.
        plans: model name -> :class:`~repro.sim.sharding.ShardPlan`
            applied on every server; unmapped models run single-chip.
        colocate: partition each chip's GLB across the mapped models
            (:func:`~repro.sim.sharding.glb_partition`).
        batch: the router's dynamic-batching policy.
        admission: the router's admission knobs (queue bound, rate
            limit).
        overload: occupancy -> degradation-rung policy.
        quality: occupancy -> early-exit-threshold policy (the depth
            axis; disabled by default).  Applies to single-chip models
            of SLO classes marked ``sheddable``; sharded models always
            run full depth.
        autoscaler: fleet sizing policy.
        initial_servers: servers active at cycle 0 (clamped into the
            autoscaler's bounds by the simulator).
        hardware: per-chip accelerator configuration.
    """

    slo_classes: tuple = DEFAULT_SLO_CLASSES
    model_classes: dict = field(default_factory=dict)
    plans: dict = field(default_factory=dict)
    colocate: bool = False
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    overload: OverloadPolicy = field(default_factory=OverloadPolicy)
    quality: QualityPolicy = field(default_factory=QualityPolicy.disabled)
    autoscaler: AutoscalerPolicy = field(default_factory=AutoscalerPolicy)
    initial_servers: int = 1
    hardware: DuetConfig = field(default_factory=DuetConfig)

    def __post_init__(self):
        if not self.slo_classes:
            raise ValueError("FleetConfig.slo_classes must be non-empty")
        names = [c.name for c in self.slo_classes]
        if len(set(names)) != len(names):
            raise ValueError(
                f"FleetConfig.slo_classes names must be distinct, got {names}"
            )
        known = set(names)
        for model, cls in self.model_classes.items():
            if cls not in known:
                raise ValueError(
                    f"model {model!r} mapped to unknown SLO class {cls!r} "
                    f"(have {sorted(known)})"
                )
        if self.initial_servers < 1:
            raise ValueError(
                f"FleetConfig.initial_servers must be >= 1, got "
                f"{self.initial_servers}"
            )

    def slo_class_for(self, model: str) -> SloClass:
        """The SLO class serving ``model``."""
        by_name = {c.name: c for c in self.slo_classes}
        name = self.model_classes.get(model)
        if name is None:
            return self.slo_classes[-1]
        return by_name[name]


@dataclass
class FleetResult:
    """Everything one fleet run produced.

    Attributes:
        config: the fleet configuration.
        records: one closed record per request, in rid order.
        summary: the fleet-wide SLO account.
        per_class: SLO-class name -> its class-level account (offered,
            completed, goodput counters, latency percentiles, target).
        goodput_rps: completions *within their class target* per
            simulated second.
        scale_events: autoscaler decisions, in decision order; each has
            ``cycle``, ``action`` (``"scale_out"``/``"scale_in"``),
            ``occupancy``, and ``servers`` (active + starting after the
            decision).
        server_stats: per-server account -- ``spawn_cycle``,
            ``active_cycles``, and per-shard ``busy_cycles``.
        shard_utilization: fleet-mean busy fraction of the busiest
            shard of each server that saw traffic.
        peak_servers: most servers ever active or starting at once.
        max_queue_depth: deepest the router queue ever got.
        simulated_cycles: cycle of the last event.
    """

    config: FleetConfig
    records: list[RequestRecord]
    summary: SloSummary
    per_class: dict
    goodput_rps: float
    scale_events: list
    server_stats: list
    shard_utilization: float
    peak_servers: int
    max_queue_depth: int
    simulated_cycles: int


class _Server:
    """One shard-group replica's bookkeeping."""

    __slots__ = ("sid", "spawn_cycle", "retire_cycle", "shard_busy")

    def __init__(self, sid: int, spawn_cycle: int):
        self.sid = sid
        self.spawn_cycle = spawn_cycle
        self.retire_cycle: int | None = None
        self.shard_busy: list[int] = []

    def add_busy(self, shard_busy: list[int]) -> None:
        if len(self.shard_busy) < len(shard_busy):
            self.shard_busy.extend(
                [0] * (len(shard_busy) - len(self.shard_busy))
            )
        for index, busy in enumerate(shard_busy):
            self.shard_busy[index] += busy


class FleetSimulator:
    """Replays open-loop traces or closed-loop populations against one
    fleet configuration.

    Args:
        config: fleet configuration (defaults to ``FleetConfig()``).
        executor: sharded batch executor; built from ``config`` when not
            supplied (plans + optional co-location over
            ``config.hardware``; exit-aware when the quality policy is
            enabled).
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        executor: ShardedExecutor | None = None,
    ):
        self.config = config if config is not None else FleetConfig()
        if executor is None:
            colocated = (
                tuple(self.config.model_classes) if self.config.colocate else ()
            )
            executor_cls = (
                DynamicShardedExecutor
                if self.config.quality.enabled
                else ShardedExecutor
            )
            executor = executor_cls(
                plans=self.config.plans,
                colocated=colocated,
                config=self.config.hardware,
            )
        self.executor = executor

    # -- event-loop state helpers -------------------------------------

    def _spawn_server(self, now: int) -> None:
        sid = self._next_sid
        self._next_sid += 1
        self._servers[sid] = _Server(sid, spawn_cycle=now)
        heapq.heappush(self._idle, sid)

    def _active_servers(self) -> int:
        return len(self._idle) + len(self._busy)

    def _push(self, cycle: int, kind: int, payload=None) -> None:
        heapq.heappush(self._events, (cycle, self._seq, kind, payload))
        self._seq += 1

    def _arm_eval(self, now: int) -> None:
        if self._scaling and not self._eval_armed:
            interval = _cycles(
                self.config.autoscaler.eval_interval_us,
                self.config.hardware.clock_hz,
            )
            self._push(now + max(interval, 1), _EVAL)
            self._eval_armed = True

    # -- the run ------------------------------------------------------

    def run(
        self,
        trace: list[Request] | None = None,
        closed_loop: ClosedLoopConfig | None = None,
    ) -> FleetResult:
        """Simulate one workload to completion.

        Exactly one of ``trace`` (open loop) and ``closed_loop`` must be
        given.
        """
        if (trace is None) == (closed_loop is None):
            raise ValueError(
                "pass exactly one of trace= (open loop) or closed_loop="
            )
        cfg = self.config
        clock_hz = cfg.hardware.clock_hz
        priorities = {
            model: cfg.slo_class_for(model).priority
            for model in set(cfg.model_classes)
        }
        self._batcher = PriorityBatcher(
            cfg.batch, clock_hz=clock_hz, priorities=priorities
        )
        self._admission = AdmissionController(cfg.admission, clock_hz=clock_hz)
        self._events: list[tuple[int, int, int, object]] = []
        self._seq = 0
        self._servers: dict[int, _Server] = {}
        self._idle: list[int] = []
        self._busy: dict[int, int] = {}  # sid -> completion cycle
        self._starting = 0
        self._next_sid = 0
        self._scaling = cfg.autoscaler.enabled
        self._eval_armed = False
        self._eval_index = 0
        self._last_scale_eval: int | None = None
        self._scale_events: list[dict] = []
        self._records: dict[int, RequestRecord] = {}
        self._rid_clients: dict[int, int] = {}
        self._next_rid = 0

        initial = min(
            max(cfg.initial_servers, cfg.autoscaler.min_servers),
            cfg.autoscaler.max_servers,
        )
        for _ in range(initial):
            self._spawn_server(0)
        peak_servers = initial

        # clients: per-client generators and remaining budgets
        self._clients: list = []
        if closed_loop is not None:
            for client in range(closed_loop.clients):
                rng = closed_loop.client_rng(client)
                self._clients.append(
                    [rng, closed_loop.requests_per_client]
                )
                self._issue(closed_loop, client, after_cycle=0)
        else:
            for request in trace:
                request = Request(
                    rid=self._next_rid,
                    model=request.model,
                    arrival_cycle=request.arrival_cycle,
                    workload_seed=request.workload_seed,
                )
                self._next_rid += 1
                self._push(request.arrival_cycle, _ARRIVAL, (request, None))

        self._arm_eval(0)
        max_depth = 0
        last_cycle = 0
        while self._events:
            now, _, kind, payload = heapq.heappop(self._events)
            last_cycle = max(last_cycle, now)
            if kind == _ARRIVAL:
                request, client = payload
                reason = self._admission.admit(now, self._batcher.depth)
                if reason is not None:
                    self._records[request.rid] = RequestRecord(
                        request, REJECTED, reject_reason=reason
                    )
                    if client is not None:
                        self._issue(closed_loop, client, after_cycle=now)
                else:
                    self._batcher.push(request)
                    max_depth = max(max_depth, self._batcher.depth)
                    self._arm_eval(now)
            elif kind == _DONE:
                sid, batch, client_map = payload
                del self._busy[sid]
                server = self._servers[sid]
                if server.retire_cycle is None:
                    heapq.heappush(self._idle, sid)
                else:
                    server.retire_cycle = now
                for request in batch:
                    client = client_map.get(request.rid)
                    if client is not None:
                        self._issue(closed_loop, client, after_cycle=now)
            elif kind == _UP:
                self._starting -= 1
                self._spawn_server(now)
            elif kind == _EVAL:
                self._eval_armed = False
                self._eval_index += 1
                self._evaluate_scaling(now)
            # _FLUSH events exist only to trigger the dispatch pass
            self._dispatch(now, closed_loop)
            peak_servers = max(
                peak_servers, self._active_servers() + self._starting
            )

        for server in self._servers.values():
            if server.retire_cycle is None:
                server.retire_cycle = last_cycle

        ordered = [self._records[rid] for rid in range(self._next_rid)]
        summary = summarize(ordered, clock_hz=clock_hz)
        per_class, goodput_rps = self._class_accounts(
            ordered, summary, clock_hz
        )
        server_stats, shard_utilization = self._server_accounts()
        return FleetResult(
            config=cfg,
            records=ordered,
            summary=summary,
            per_class=per_class,
            goodput_rps=goodput_rps,
            scale_events=self._scale_events,
            server_stats=server_stats,
            shard_utilization=shard_utilization,
            peak_servers=peak_servers,
            max_queue_depth=max_depth,
            simulated_cycles=last_cycle,
        )

    # -- handlers -----------------------------------------------------

    def _issue(
        self, closed_loop: ClosedLoopConfig, client: int, after_cycle: int
    ) -> None:
        """Schedule a closed-loop client's next request, budget allowing."""
        rng, remaining = self._clients[client]
        if remaining <= 0:
            return
        self._clients[client][1] = remaining - 1
        think = closed_loop.think_cycles(rng)
        model, workload_seed = closed_loop.draw_request(rng)
        request = Request(
            rid=self._next_rid,
            model=model,
            arrival_cycle=after_cycle + think,
            workload_seed=workload_seed,
        )
        self._rid_clients[request.rid] = client
        self._next_rid += 1
        self._push(request.arrival_cycle, _ARRIVAL, (request, client))

    def _dispatch(self, now: int, closed_loop) -> None:
        cfg = self.config
        while self._idle:
            batch = self._batcher.pop_batch(now)
            if batch is None:
                break
            pressure = self._batcher.depth + len(batch)
            stage = cfg.overload.stage_for(
                pressure, cfg.admission.max_queue_depth
            )
            sid = heapq.heappop(self._idle)
            if (
                cfg.quality.enabled
                and isinstance(self.executor, DynamicShardedExecutor)
                and cfg.slo_class_for(batch[0].model).sheddable
            ):
                threshold = cfg.quality.threshold_for(
                    pressure, cfg.admission.max_queue_depth
                )
            else:
                threshold = None
            if threshold is not None:
                result = self.executor.execute(
                    batch[0].model,
                    [r.workload_seed for r in batch],
                    stage=stage,
                    threshold=threshold,
                )
            else:
                result = self.executor.execute(
                    batch[0].model,
                    [r.workload_seed for r in batch],
                    stage=stage,
                )
            decisions = getattr(result, "decisions", None)
            done = now + result.service_cycles
            self._servers[sid].add_busy(result.shard_busy_cycles)
            client_map = {}
            for index, request in enumerate(batch):
                self._records[request.rid] = RequestRecord(
                    request,
                    COMPLETED,
                    stage=stage,
                    batch_size=len(batch),
                    dispatch_cycle=now,
                    completion_cycle=done,
                    **decision_record_fields(
                        request.model,
                        decisions[index] if decisions else None,
                    ),
                )
                if closed_loop is not None:
                    client_map[request.rid] = self._client_of(request.rid)
            self._busy[sid] = done
            self._push(done, _DONE, (sid, batch, client_map))
        if self._idle and self._batcher.depth:
            flush = self._batcher.next_flush_cycle()
            if flush is not None:
                self._push(max(flush, now + 1), _FLUSH)

    def _client_of(self, rid: int) -> int | None:
        # closed-loop requests record their issuing client on the
        # arrival event; the map is rebuilt here from the pending set
        return self._rid_clients.get(rid)

    def _evaluate_scaling(self, now: int) -> None:
        cfg = self.config
        policy = cfg.autoscaler
        occupancy = self._batcher.depth / cfg.admission.max_queue_depth
        active = self._active_servers()
        cooled = (
            self._last_scale_eval is None
            or self._eval_index - self._last_scale_eval > policy.cooldown_evals
        )
        if (
            cooled
            and occupancy > policy.scale_out_occupancy
            and active + self._starting < policy.max_servers
        ):
            self._starting += 1
            self._last_scale_eval = self._eval_index
            startup = _cycles(policy.startup_us, cfg.hardware.clock_hz)
            self._push(now + startup, _UP)
            self._scale_events.append(
                {
                    "cycle": now,
                    "action": "scale_out",
                    "occupancy": occupancy,
                    "servers": active + self._starting,
                }
            )
        elif (
            cooled
            and occupancy < policy.scale_in_occupancy
            and active + self._starting > policy.min_servers
            and self._idle
        ):
            # retire the youngest idle server; low ids stay stable
            victim = max(self._idle)
            self._idle.remove(victim)
            heapq.heapify(self._idle)
            self._servers[victim].retire_cycle = now
            self._last_scale_eval = self._eval_index
            self._scale_events.append(
                {
                    "cycle": now,
                    "action": "scale_in",
                    "occupancy": occupancy,
                    "servers": self._active_servers() + self._starting,
                }
            )
        # keep evaluating while there is anything to react to
        if self._batcher.depth or self._busy or self._starting:
            self._arm_eval(now)

    # -- accounting ---------------------------------------------------

    def _class_accounts(self, records, summary, clock_hz):
        cfg = self.config
        duration_s = (
            summary.duration_ms / 1e3 if summary.duration_ms > 0 else 0.0
        )
        per_class = {}
        total_good = 0
        for slo in cfg.slo_classes:
            members = [
                r
                for r in records
                if cfg.slo_class_for(r.request.model).name == slo.name
            ]
            completed = [r for r in members if r.completed]
            latencies = sorted(
                r.latency_cycles / clock_hz * 1e3 for r in completed
            )
            good = sum(1 for value in latencies if value <= slo.target_ms)
            total_good += good
            early = sum(1 for r in completed if r.exited_early)
            per_class[slo.name] = {
                "target_ms": slo.target_ms,
                "priority": slo.priority,
                "sheddable": slo.sheddable,
                "offered": len(members),
                "completed": len(completed),
                "rejected": len(members) - len(completed),
                "good": good,
                "goodput_rps": good / duration_s if duration_s > 0 else 0.0,
                "latency_ms": {
                    f"p{q}": percentile(latencies, q) if latencies else None
                    for q in (50, 95, 99)
                },
                "early_exits": early,
                "mean_exit_depth": (
                    sum(r.exit_depth for r in completed) / len(completed)
                    if completed
                    else 1.0
                ),
                "mean_quality_drop": (
                    sum(r.quality_drop for r in completed) / len(completed)
                    if completed
                    else 0.0
                ),
            }
        goodput_rps = total_good / duration_s if duration_s > 0 else 0.0
        return per_class, goodput_rps

    def _server_accounts(self):
        stats = []
        utilizations = []
        for sid in sorted(self._servers):
            server = self._servers[sid]
            span = max(server.retire_cycle - server.spawn_cycle, 0)
            stats.append(
                {
                    "server": sid,
                    "spawn_cycle": server.spawn_cycle,
                    "active_cycles": span,
                    "shard_busy_cycles": list(server.shard_busy),
                }
            )
            if span > 0 and server.shard_busy:
                utilizations.append(max(server.shard_busy) / span)
        mean_utilization = (
            sum(utilizations) / len(utilizations) if utilizations else 0.0
        )
        return stats, mean_utilization


def simulate_fleet(
    workload: TraceConfig | list[Request] | ClosedLoopConfig,
    config: FleetConfig | None = None,
    executor: ShardedExecutor | None = None,
) -> FleetResult:
    """Convenience wrapper: generate (if needed) and replay one workload."""
    simulator = FleetSimulator(config=config, executor=executor)
    if isinstance(workload, ClosedLoopConfig):
        return simulator.run(closed_loop=workload)
    if isinstance(workload, TraceConfig):
        workload = generate_trace(workload)
    return simulator.run(trace=workload)
