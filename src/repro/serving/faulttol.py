"""Fault-tolerant serving: retries, hedging, breakers, health-checked pool.

The plain :class:`~repro.serving.server.ServingSimulator` assumes immortal
workers.  This module re-runs the same discrete-event design against a
fleet whose workers **crash**, **hang**, and **straggle** (fates drawn per
dispatch from :mod:`repro.reliability.workerfaults` streams) and layers
the client- and server-side machinery production serving needs to survive
that:

- **timeouts + bounded retries** with seeded exponential backoff jitter
  (:class:`RetryPolicy`): an attempt that outlives its timeout is
  abandoned and the request re-queued, up to ``max_attempts`` dispatches;
- **hedged requests** (:class:`HedgePolicy`): an attempt that outlives
  the observed p99 attempt latency is raced against a second dispatch on
  a different worker, first completion wins, the loser's result is
  suppressed (never delivered twice);
- **per-worker circuit breakers** (:class:`BreakerPolicy`): consecutive
  timeouts open a worker's breaker (closed -> open -> half-open with a
  single probe), steering traffic away from a "lemon" machine;
- **heartbeat health checks** (:class:`HealthPolicy`): dead and hung
  workers miss heartbeats, get evicted after ``miss_threshold`` misses,
  and respawn after a warm (hang) or cold (crash) restart cost;
- **graceful drain**: an evicted worker's in-flight requests are handed
  back to the *front* of their model queue with the burned attempt
  refunded (the failure was the server's, not the client's); a healthy
  worker whose client timed out simply finishes -- its late completion
  is still delivered if the request has no other result yet.

Two conservation properties are structural, counted, and asserted by the
``duet-chaos/1`` campaign (:mod:`repro.bench.chaos`):

1. **no request is lost** -- every admitted request ends in exactly one
   terminal record (completed, or failed with a terminal reason; a
   per-request deadline backstops even the policy-free configuration);
2. **no request completes twice** -- a request's first completion wins
   and every later one is suppressed (counted as ``redundant``, never
   delivered), so the client-visible duplicate count is zero.

Interaction with admission (``overload.py``): retries and hedges are
*internal* re-dispatches -- they never pass through the admission
controller, so they consume no token-bucket tokens and can never starve
fresh arrivals of admission capacity.  The queue-depth bound therefore
applies to arrivals only; re-queued retries may transiently push the
pending depth past it (recorded in ``max_queue_depth_seen``), and the
overload ladder responds to that pressure exactly as it does to arrivals.

With zero fault rates and the ``none`` policy this simulator reproduces
the plain :class:`~repro.serving.server.ServingSimulator` record for
record (property-tested in ``tests/serving/test_faulttol.py``): same
batches, same stages, same cycle times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.reliability.workerfaults import (
    FATE_CRASH,
    FATE_HANG,
    FATE_STRAGGLE,
    WorkerFaultModel,
    spawn_worker_streams,
)
from repro.dynamic.executor import DynamicBatchExecutor
from repro.serving.admission import AdmissionController
from repro.serving.batcher import DynamicBatcher
from repro.serving.loadgen import TraceConfig, generate_trace
from repro.serving.overload import SERVING_LADDER
from repro.serving.quality import decision_record_fields
from repro.serving.request import (
    COMPLETED,
    FAIL_ATTEMPTS_EXHAUSTED,
    FAIL_DEADLINE,
    FAILED,
    REJECTED,
    Request,
    RequestRecord,
)
from repro.serving.server import ServerConfig
from repro.serving.slo import percentile
from repro.sim.batching import BatchExecutor

__all__ = [
    "POLICY_LADDER",
    "RetryPolicy",
    "HedgePolicy",
    "BreakerPolicy",
    "HealthPolicy",
    "FaultTolerancePolicy",
    "policy_named",
    "ChaosSummary",
    "ChaosResult",
    "FaultTolerantSimulator",
    "simulate_chaos",
]


def _cycles(us: float, clock_hz: float) -> int:
    """Simulated microseconds -> integer cycles."""
    return int(round(us * 1e-6 * clock_hz))


@dataclass(frozen=True)
class RetryPolicy:
    """Per-attempt timeout + bounded retries with seeded backoff jitter.

    Attributes:
        max_attempts: dispatches a request may consume (1 = no retries).
            Hedges and server-side hand-backs do not count against it.
        timeout_us: per-attempt timeout; an attempt older than this is
            abandoned and the request re-queued (simulated us).
        backoff_base_us: backoff before retry ``k`` (1-based) is
            ``backoff_base_us * backoff_multiplier**(k-1)``, stretched by
            jitter.
        backoff_multiplier: exponential backoff growth factor.
        jitter_fraction: each backoff is multiplied by ``1 + f*u`` with
            ``u`` uniform in ``[0, 1)`` from the run's seeded policy
            stream -- decorrelates retry herds without wall-clock
            randomness.
    """

    max_attempts: int = 3
    timeout_us: float = 150_000.0
    backoff_base_us: float = 1_000.0
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_us <= 0:
            raise ValueError(
                f"RetryPolicy.timeout_us must be positive, got {self.timeout_us}"
            )
        if self.backoff_base_us < 0:
            raise ValueError(
                f"RetryPolicy.backoff_base_us must be >= 0, got "
                f"{self.backoff_base_us}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"RetryPolicy.backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"RetryPolicy.jitter_fraction must be in [0, 1], got "
                f"{self.jitter_fraction}"
            )


@dataclass(frozen=True)
class HedgePolicy:
    """Tail-latency hedging: race slow attempts against a second worker.

    Attributes:
        initial_delay_us: hedge delay before enough attempt latencies
            have been observed.
        latency_percentile: once warmed up, hedge after this percentile
            of observed attempt latencies (the classic p99 rule).
        min_samples: observed attempt completions required before the
            percentile replaces ``initial_delay_us``.
    """

    initial_delay_us: float = 50_000.0
    latency_percentile: float = 99.0
    min_samples: int = 20

    def __post_init__(self):
        if self.initial_delay_us <= 0:
            raise ValueError(
                f"HedgePolicy.initial_delay_us must be positive, got "
                f"{self.initial_delay_us}"
            )
        if not 0.0 < self.latency_percentile <= 100.0:
            raise ValueError(
                f"HedgePolicy.latency_percentile must be in (0, 100], got "
                f"{self.latency_percentile}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"HedgePolicy.min_samples must be >= 1, got {self.min_samples}"
            )


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-worker circuit breaker: closed -> open -> half-open.

    Attributes:
        failure_threshold: consecutive attempt timeouts that open the
            breaker.
        reset_timeout_us: how long an open breaker blocks dispatches
            before transitioning to half-open (one probe allowed; a
            successful probe closes, a failed one re-opens).
    """

    failure_threshold: int = 3
    reset_timeout_us: float = 500_000.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(
                f"BreakerPolicy.failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.reset_timeout_us <= 0:
            raise ValueError(
                f"BreakerPolicy.reset_timeout_us must be positive, got "
                f"{self.reset_timeout_us}"
            )


@dataclass(frozen=True)
class HealthPolicy:
    """Heartbeat health checks with evict + warm/cold respawn.

    Attributes:
        heartbeat_us: heartbeat period; dead and hung workers miss beats.
        miss_threshold: consecutive misses before eviction.
        warm_restart_us: respawn cost of an evicted *hung* worker (the
            process is alive; it gets a soft restart).
        cold_restart_us: respawn cost of an evicted *crashed* worker
            (full process start + model/weight reload).
    """

    heartbeat_us: float = 20_000.0
    miss_threshold: int = 3
    warm_restart_us: float = 50_000.0
    cold_restart_us: float = 250_000.0

    def __post_init__(self):
        if self.heartbeat_us <= 0:
            raise ValueError(
                f"HealthPolicy.heartbeat_us must be positive, got "
                f"{self.heartbeat_us}"
            )
        if self.miss_threshold < 1:
            raise ValueError(
                f"HealthPolicy.miss_threshold must be >= 1, got "
                f"{self.miss_threshold}"
            )
        if self.warm_restart_us < 0 or self.cold_restart_us < 0:
            raise ValueError(
                "HealthPolicy restart costs must be >= 0, got "
                f"warm={self.warm_restart_us} cold={self.cold_restart_us}"
            )


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """One named bundle of the four mechanisms (any subset enabled).

    Attributes:
        name: policy name as it appears in the chaos campaign.
        retry / hedge / breaker / health: the enabled mechanisms
            (``None`` disables each).
        deadline_us: hard per-request deadline from admission; a request
            with no completion by then terminally fails
            (:data:`~repro.serving.request.FAIL_DEADLINE`).  This is the
            conservation backstop -- it closes every admitted request
            even under the mechanism-free ``none`` policy.
    """

    name: str
    retry: RetryPolicy | None = None
    hedge: HedgePolicy | None = None
    breaker: BreakerPolicy | None = None
    health: HealthPolicy | None = None
    deadline_us: float = 2_000_000.0

    def __post_init__(self):
        if self.deadline_us <= 0:
            raise ValueError(
                f"FaultTolerancePolicy.deadline_us must be positive, got "
                f"{self.deadline_us}"
            )
        if self.breaker is not None and self.retry is None:
            raise ValueError(
                "FaultTolerancePolicy.breaker requires retry: breaker "
                "failures are attempt timeouts"
            )
        if self.retry is not None and self.deadline_us <= self.retry.timeout_us:
            raise ValueError(
                "FaultTolerancePolicy.deadline_us must exceed the attempt "
                f"timeout, got deadline={self.deadline_us} <= "
                f"timeout={self.retry.timeout_us}"
            )


#: The policy sweep of the chaos campaign, weakest to strongest.
POLICY_LADDER: tuple[str, ...] = (
    "none",
    "retry",
    "retry-hedge",
    "retry-hedge-breaker",
)


def policy_named(name: str, deadline_us: float = 2_000_000.0) -> FaultTolerancePolicy:
    """The default policy bundle of one :data:`POLICY_LADDER` rung.

    ``none`` is mechanism-free (deadline backstop only); each later rung
    adds one mechanism on top of the previous (health checks ride with
    every rung that has retries -- they are server-side and policy
    comparisons above ``none`` assume a self-healing pool).
    """
    if name not in POLICY_LADDER:
        raise ValueError(
            f"unknown fault-tolerance policy {name!r}; choose from "
            f"{POLICY_LADDER}"
        )
    if name == "none":
        return FaultTolerancePolicy(name=name, deadline_us=deadline_us)
    retry = RetryPolicy()
    health = HealthPolicy()
    hedge = HedgePolicy() if "hedge" in name else None
    breaker = BreakerPolicy() if "breaker" in name else None
    return FaultTolerancePolicy(
        name=name,
        retry=retry,
        hedge=hedge,
        breaker=breaker,
        health=health,
        deadline_us=deadline_us,
    )


# -- internal event-loop state -------------------------------------------

_ARRIVAL, _DONE, _TIMEOUT, _HEDGE, _RETRY, _DEADLINE = 0, 1, 2, 3, 4, 5
_FLUSH, _BEAT, _RESPAWN, _CRASH, _WAKE = 6, 7, 8, 9, 10

_IDLE, _BUSY, _HUNG, _DEAD, _RESTARTING = (
    "idle",
    "busy",
    "hung",
    "dead",
    "restarting",
)

_CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half-open"


class _Breaker:
    """Per-worker-slot breaker state (client-side view of the endpoint)."""

    __slots__ = ("state", "failures", "open_until", "probe_in_flight")

    def __init__(self):
        self.state = _CLOSED
        self.failures = 0
        self.open_until = 0
        self.probe_in_flight = False


class _Worker:
    """One worker slot: lifecycle state + the attempt it is serving."""

    __slots__ = ("wid", "state", "generation", "attempt", "misses", "breaker")

    def __init__(self, wid: int):
        self.wid = wid
        self.state = _IDLE
        self.generation = 0
        self.attempt: _Attempt | None = None
        self.misses = 0
        self.breaker = _Breaker()


class _Attempt:
    """One dispatched batch: requests, worker, fate, and liveness."""

    __slots__ = (
        "aid",
        "requests",
        "worker",
        "generation",
        "dispatch_cycle",
        "stage",
        "service_cycles",
        "fate",
        "is_hedge",
        "decisions",
        "live",
        "abandoned",
    )

    def __init__(
        self, aid, requests, worker, generation, dispatch_cycle, stage,
        service_cycles, fate, is_hedge, decisions=None,
    ):
        self.aid = aid
        self.requests = requests
        self.worker = worker
        self.generation = generation
        self.dispatch_cycle = dispatch_cycle
        self.stage = stage
        self.service_cycles = service_cycles
        self.fate = fate
        self.is_hedge = is_hedge
        # rid -> ExitDecision of the quality axis (empty when static)
        self.decisions = decisions if decisions is not None else {}
        self.live = True
        self.abandoned = False


class _Tracker:
    """Per-admitted-request ledger: budget, outstanding attempts, closure."""

    __slots__ = (
        "request",
        "tries",
        "attempts",
        "outstanding",
        "done",
        "retry_pending",
        "hedged",
        "handed_back",
    )

    def __init__(self, request: Request):
        self.request = request
        self.tries = 0  # dispatches charged against the retry budget
        self.attempts = 0  # all dispatches, hedges included
        self.outstanding = 0  # live attempts currently carrying it
        self.done = False
        self.retry_pending = False
        self.hedged = False
        self.handed_back = 0  # evicted dispatches returned to the queue


@dataclass(frozen=True)
class ChaosSummary:
    """The account of one fault-tolerant serving run.

    ``goodput_rps`` is *completed* requests per simulated second --
    rejected and failed requests earn nothing, and the duration window
    runs from the first arrival to the last *terminal* event
    (completion or failure verdict), so a run that strands its clients
    until their deadlines pays for that wall time.  ``duplicates`` counts
    client-visible double completions and is structurally zero (the
    first completion wins; later ones are counted in ``redundant`` and
    suppressed).  ``lost`` counts admitted requests with no terminal
    record and is likewise structurally zero (the per-request deadline
    closes every straggler).
    """

    offered: int
    admitted: int
    completed: int
    rejected: int
    failed: int
    rejects_by_reason: dict
    fails_by_reason: dict
    duration_ms: float
    goodput_rps: float
    success_rate: float
    latency_ms: dict
    dispatches: int
    retries: int
    hedges: int
    hedge_wins: int
    hedges_skipped: int
    timeouts: int
    late_completions: int
    redundant: int
    crashes: int
    hangs: int
    straggles: int
    evictions: int
    respawns_warm: int
    respawns_cold: int
    handed_back: int
    breaker_opens: int
    breaker_probes: int
    duplicates: int
    lost: int
    stage_counts: dict
    early_exits: int = 0
    mean_exit_depth: float = 1.0
    mean_quality_drop: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready form (insertion-ordered, deterministic)."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "rejects_by_reason": dict(sorted(self.rejects_by_reason.items())),
            "fails_by_reason": dict(sorted(self.fails_by_reason.items())),
            "duration_ms": self.duration_ms,
            "goodput_rps": self.goodput_rps,
            "success_rate": self.success_rate,
            "latency_ms": self.latency_ms,
            "dispatches": self.dispatches,
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "hedges_skipped": self.hedges_skipped,
            "timeouts": self.timeouts,
            "late_completions": self.late_completions,
            "redundant": self.redundant,
            "faults": {
                "crashes": self.crashes,
                "hangs": self.hangs,
                "straggles": self.straggles,
            },
            "evictions": self.evictions,
            "respawns_warm": self.respawns_warm,
            "respawns_cold": self.respawns_cold,
            "handed_back": self.handed_back,
            "breaker_opens": self.breaker_opens,
            "breaker_probes": self.breaker_probes,
            "duplicates": self.duplicates,
            "lost": self.lost,
            "stage_counts": dict(self.stage_counts),
            "early_exits": self.early_exits,
            "mean_exit_depth": self.mean_exit_depth,
            "mean_quality_drop": self.mean_quality_drop,
        }

    def format(self) -> str:
        """Multi-line plain-text rendering for the CLI."""
        lat = self.latency_ms
        if lat["p50"] is None:
            dist = "n/a"
        else:
            dist = (
                f"p50 {lat['p50']:8.3f} ms  p95 {lat['p95']:8.3f} ms  "
                f"p99 {lat['p99']:8.3f} ms  (max {lat['max']:.3f})"
            )
        lines = [
            f"  requests   : {self.offered} offered, {self.admitted} admitted, "
            f"{self.completed} completed, {self.failed} failed, "
            f"{self.rejected} rejected",
            f"  goodput    : {self.goodput_rps:.1f} req/s "
            f"(success rate {self.success_rate:.3f}) over "
            f"{self.duration_ms:.1f} ms simulated",
            f"  latency    : {dist}",
            f"  faults     : {self.crashes} crashes, {self.hangs} hangs, "
            f"{self.straggles} straggles across {self.dispatches} dispatches",
            f"  recovery   : {self.retries} retries, {self.hedges} hedges "
            f"({self.hedge_wins} wins, {self.hedges_skipped} skipped), "
            f"{self.timeouts} timeouts, {self.handed_back} handed back",
            f"  fleet      : {self.evictions} evictions, "
            f"{self.respawns_warm} warm + {self.respawns_cold} cold respawns, "
            f"{self.breaker_opens} breaker opens "
            f"({self.breaker_probes} probes)",
            f"  invariants : duplicates={self.duplicates} lost={self.lost}",
        ]
        return "\n".join(lines)


@dataclass
class ChaosResult:
    """Everything one fault-tolerant serving run produced."""

    config: ServerConfig
    faults: WorkerFaultModel
    policy: FaultTolerancePolicy
    seed: int
    records: list[RequestRecord]
    summary: ChaosSummary
    max_queue_depth_seen: int
    simulated_cycles: int


class FaultTolerantSimulator:
    """Replays arrival traces against a faulty fleet under one policy.

    Args:
        config: the serving front end (same surface as the plain
            simulator).
        faults: the fleet's fault model.
        policy: the fault-tolerance mechanisms to run with.
        seed: root seed of the run's fault + policy-jitter streams
            (:func:`repro.reliability.workerfaults.spawn_worker_streams`).
        executor: optional injected batch executor (stub in tests).

    One instance may be reused; every :meth:`run` resets all state.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        faults: WorkerFaultModel | None = None,
        policy: FaultTolerancePolicy | None = None,
        seed: int = 0,
        executor: BatchExecutor | None = None,
    ):
        self.config = config if config is not None else ServerConfig()
        self.faults = faults if faults is not None else WorkerFaultModel()
        self.policy = policy if policy is not None else policy_named("none")
        self.seed = seed
        if executor is None:
            if self.config.quality.enabled:
                executor = DynamicBatchExecutor(config=self.config.hardware)
            else:
                executor = BatchExecutor(config=self.config.hardware)
        self.executor = executor

    # -- lifecycle ---------------------------------------------------------

    def _reset(self, trace: list[Request]) -> None:
        cfg = self.config
        clock_hz = cfg.hardware.clock_hz
        policy = self.policy
        self._batcher = DynamicBatcher(cfg.batch, clock_hz=clock_hz)
        self._admission = AdmissionController(cfg.admission, clock_hz=clock_hz)
        streams, jitter_rng = spawn_worker_streams(
            self.seed, cfg.workers, self.faults
        )
        self._streams = streams
        self._jitter_rng = jitter_rng
        self._workers = [_Worker(w) for w in range(cfg.workers)]
        self._trackers: dict[int, _Tracker] = {}
        self._records: dict[int, RequestRecord] = {}
        self._events: list[tuple[int, int, int, object]] = []
        self._seq = 0
        self._open_requests = 0
        self._arrivals_remaining = len(trace)
        self._attempt_latencies: list[int] = []
        self._next_aid = 0
        self._max_depth = 0
        self._last_cycle = 0
        self._deadline_cycles = _cycles(policy.deadline_us, clock_hz)
        self._timeout_cycles = (
            _cycles(policy.retry.timeout_us, clock_hz) if policy.retry else 0
        )
        self._heartbeat_cycles = (
            _cycles(policy.health.heartbeat_us, clock_hz) if policy.health else 0
        )
        self._reset_cycles = (
            _cycles(policy.breaker.reset_timeout_us, clock_hz)
            if policy.breaker
            else 0
        )
        self._counts = {
            key: 0
            for key in (
                "dispatches",
                "retries",
                "hedges",
                "hedge_wins",
                "hedges_skipped",
                "timeouts",
                "late_completions",
                "redundant",
                "crashes",
                "hangs",
                "straggles",
                "evictions",
                "respawns_warm",
                "respawns_cold",
                "handed_back",
                "breaker_opens",
                "breaker_probes",
                "duplicates",
            )
        }

    def _push(self, cycle: int, kind: int, payload: object = None) -> None:
        heapq.heappush(self._events, (cycle, self._seq, kind, payload))
        self._seq += 1

    def run(self, trace: list[Request]) -> ChaosResult:
        """Simulate one trace to termination (every request closed)."""
        self._reset(trace)
        for request in trace:
            self._push(request.arrival_cycle, _ARRIVAL, request)
        if self._heartbeat_cycles:
            self._push(self._heartbeat_cycles, _BEAT)

        handlers = {
            _ARRIVAL: self._on_arrival,
            _DONE: self._on_done,
            _TIMEOUT: self._on_timeout,
            _HEDGE: self._on_hedge,
            _RETRY: self._on_retry,
            _DEADLINE: self._on_deadline,
            _BEAT: self._on_beat,
            _RESPAWN: self._on_respawn,
            _CRASH: self._on_crash,
        }
        while self._events:
            now, _, kind, payload = heapq.heappop(self._events)
            self._last_cycle = max(self._last_cycle, now)
            handler = handlers.get(kind)
            if handler is not None:
                handler(now, payload)
            # _FLUSH and _WAKE exist only to trigger the dispatch pass
            self._dispatch_pass(now)

        return self._close(trace)

    # -- event handlers ----------------------------------------------------

    def _on_arrival(self, now: int, request: Request) -> None:
        self._arrivals_remaining -= 1
        reason = self._admission.admit(now, self._batcher.depth)
        if reason is not None:
            self._records[request.rid] = RequestRecord(
                request, REJECTED, reject_reason=reason
            )
            return
        self._trackers[request.rid] = _Tracker(request)
        self._open_requests += 1
        self._batcher.push(request)
        self._max_depth = max(self._max_depth, self._batcher.depth)
        self._push(now + self._deadline_cycles, _DEADLINE, request.rid)

    def _on_done(self, now: int, attempt: _Attempt) -> None:
        worker = self._workers[attempt.worker]
        if worker.generation == attempt.generation and worker.attempt is attempt:
            worker.state = _IDLE
            worker.attempt = None
            # A completion the client already timed out on is not a
            # breaker success: the breaker tracks *client-perceived*
            # outcomes, and this one was perceived as a failure.  The
            # worker is still released -- it is alive, just slow.
            if not attempt.abandoned:
                self._breaker_success(worker)
        was_live = attempt.live
        attempt.live = False
        if was_live:
            self._attempt_latencies.append(now - attempt.dispatch_cycle)
        for request in attempt.requests:
            tracker = self._trackers[request.rid]
            if was_live:
                tracker.outstanding -= 1
            if tracker.done:
                record = self._records[request.rid]
                if record.outcome == COMPLETED:
                    self._counts["redundant"] += 1
                continue
            if attempt.abandoned:
                self._counts["late_completions"] += 1
            self._complete(now, tracker, attempt)

    def _on_timeout(self, now: int, attempt: _Attempt) -> None:
        if not attempt.live:
            return
        pending = [
            r for r in attempt.requests if not self._trackers[r.rid].done
        ]
        if not pending:
            return
        attempt.live = False
        attempt.abandoned = True
        self._counts["timeouts"] += 1
        self._breaker_failure(now, self._workers[attempt.worker])
        for request in attempt.requests:
            tracker = self._trackers[request.rid]
            tracker.outstanding -= 1
            if tracker.done or tracker.outstanding > 0 or tracker.retry_pending:
                continue
            if self.policy.retry and tracker.tries < self.policy.retry.max_attempts:
                tracker.retry_pending = True
                self._push(now + self._backoff(tracker.tries), _RETRY, request.rid)
            else:
                self._fail(now, tracker, FAIL_ATTEMPTS_EXHAUSTED)

    def _on_hedge(self, now: int, attempt: _Attempt) -> None:
        if self.policy.hedge is None or not attempt.live:
            return
        pending = [
            r for r in attempt.requests if not self._trackers[r.rid].done
        ]
        if not pending:
            return
        wid = self._select_worker(now, exclude=attempt.worker)
        if wid is None:
            self._counts["hedges_skipped"] += 1
            return
        self._counts["hedges"] += 1
        self._start_attempt(now, wid, pending, is_hedge=True)

    def _on_retry(self, now: int, rid: int) -> None:
        tracker = self._trackers[rid]
        tracker.retry_pending = False
        if tracker.done:
            return
        self._counts["retries"] += 1
        self._batcher.push(tracker.request)
        self._max_depth = max(self._max_depth, self._batcher.depth)

    def _on_deadline(self, now: int, rid: int) -> None:
        tracker = self._trackers[rid]
        if not tracker.done:
            self._fail(now, tracker, FAIL_DEADLINE)

    def _on_beat(self, now: int, _payload: object) -> None:
        health = self.policy.health
        for worker in self._workers:
            if worker.state in (_DEAD, _HUNG):
                worker.misses += 1
                if worker.misses >= health.miss_threshold:
                    self._evict(now, worker)
            else:
                worker.misses = 0
        if self._open_requests > 0 or self._arrivals_remaining > 0:
            self._push(now + self._heartbeat_cycles, _BEAT)

    def _on_respawn(self, now: int, payload: tuple[int, int]) -> None:
        wid, generation = payload
        worker = self._workers[wid]
        if worker.generation != generation or worker.state != _RESTARTING:
            return
        worker.state = _IDLE
        worker.attempt = None
        worker.misses = 0

    def _on_crash(self, now: int, payload: tuple[int, int]) -> None:
        wid, generation = payload
        worker = self._workers[wid]
        if worker.generation != generation or worker.state != _BUSY:
            return
        worker.state = _DEAD

    # -- dispatch ----------------------------------------------------------

    def _breaker_allows(self, now: int, worker: _Worker) -> bool:
        if self.policy.breaker is None:
            return True
        breaker = worker.breaker
        if breaker.state == _OPEN and now >= breaker.open_until:
            breaker.state = _HALF_OPEN
            breaker.probe_in_flight = False
        if breaker.state == _CLOSED:
            return True
        if breaker.state == _HALF_OPEN:
            return not breaker.probe_in_flight
        return False

    def _select_worker(self, now: int, exclude: int | None = None) -> int | None:
        for worker in self._workers:  # ascending wid: smallest idle wins
            if worker.state != _IDLE or worker.wid == exclude:
                continue
            if self._breaker_allows(now, worker):
                return worker.wid
        return None

    def _backoff(self, tries: int) -> int:
        retry = self.policy.retry
        base = retry.backoff_base_us * retry.backoff_multiplier ** max(
            tries - 1, 0
        )
        jitter = 1.0 + retry.jitter_fraction * float(self._jitter_rng.random())
        return max(1, _cycles(base * jitter, self.config.hardware.clock_hz))

    def _start_attempt(
        self, now: int, wid: int, batch: list[Request], is_hedge: bool
    ) -> None:
        cfg = self.config
        worker = self._workers[wid]
        pressure = self._batcher.depth + len(batch)
        stage = cfg.overload.stage_for(pressure, cfg.admission.max_queue_depth)
        if cfg.quality.enabled and isinstance(
            self.executor, DynamicBatchExecutor
        ):
            threshold = cfg.quality.threshold_for(
                pressure, cfg.admission.max_queue_depth
            )
            result = self.executor.execute(
                batch[0].model,
                [r.workload_seed for r in batch],
                stage=stage,
                threshold=threshold,
            )
        else:
            result = self.executor.execute(
                batch[0].model, [r.workload_seed for r in batch], stage=stage
            )
        batch_decisions = getattr(result, "decisions", None)
        decisions = (
            {
                request.rid: decision
                for request, decision in zip(batch, batch_decisions)
                if decision is not None
            }
            if batch_decisions
            else {}
        )
        fate = self._streams[wid].draw_fate()
        service = result.service_cycles
        if fate.kind == FATE_STRAGGLE:
            service = int(service * self.faults.straggle_multiplier)
        attempt = _Attempt(
            aid=self._next_aid,
            requests=batch,
            worker=wid,
            generation=worker.generation,
            dispatch_cycle=now,
            stage=stage,
            service_cycles=service,
            fate=fate,
            is_hedge=is_hedge,
            decisions=decisions,
        )
        self._next_aid += 1
        self._counts["dispatches"] += 1
        worker.attempt = attempt
        breaker = worker.breaker
        if self.policy.breaker is not None and breaker.state == _HALF_OPEN:
            breaker.probe_in_flight = True
            self._counts["breaker_probes"] += 1
        for request in batch:
            tracker = self._trackers[request.rid]
            tracker.attempts += 1
            tracker.outstanding += 1
            if is_hedge:
                tracker.hedged = True
            else:
                tracker.tries += 1
        if fate.kind == FATE_CRASH:
            self._counts["crashes"] += 1
            worker.state = _BUSY
            dead_at = now + max(1, int(fate.crash_fraction * service))
            self._push(dead_at, _CRASH, (wid, worker.generation))
        elif fate.kind == FATE_HANG:
            self._counts["hangs"] += 1
            worker.state = _HUNG
        else:
            if fate.kind == FATE_STRAGGLE:
                self._counts["straggles"] += 1
            worker.state = _BUSY
            self._push(now + service, _DONE, attempt)
        if self.policy.retry is not None:
            self._push(now + self._timeout_cycles, _TIMEOUT, attempt)
        if self.policy.hedge is not None and not is_hedge:
            self._push(now + self._hedge_delay(), _HEDGE, attempt)

    def _hedge_delay(self) -> int:
        hedge = self.policy.hedge
        if len(self._attempt_latencies) >= hedge.min_samples:
            return max(
                1,
                int(
                    percentile(
                        sorted(self._attempt_latencies), hedge.latency_percentile
                    )
                ),
            )
        return max(1, _cycles(hedge.initial_delay_us, self.config.hardware.clock_hz))

    def _dispatch_pass(self, now: int) -> None:
        worker_free = False
        while True:
            wid = self._select_worker(now)
            if wid is None:
                break
            batch = None
            while True:
                popped = self._batcher.pop_batch(now)
                if popped is None:
                    break
                live = [
                    r for r in popped if not self._trackers[r.rid].done
                ]
                if live:
                    batch = live
                    break
            if batch is None:
                worker_free = True
                break
            self._start_attempt(now, wid, batch, is_hedge=False)
        if worker_free and self._batcher.depth:
            flush = self._batcher.next_flush_cycle()
            if flush is not None:
                self._push(max(flush, now + 1), _FLUSH)

    # -- recovery machinery ------------------------------------------------

    def _breaker_success(self, worker: _Worker) -> None:
        if self.policy.breaker is None:
            return
        breaker = worker.breaker
        breaker.failures = 0
        breaker.probe_in_flight = False
        breaker.state = _CLOSED

    def _breaker_failure(self, now: int, worker: _Worker) -> None:
        if self.policy.breaker is None:
            return
        breaker = worker.breaker
        breaker.failures += 1
        if breaker.state == _HALF_OPEN or (
            breaker.state == _CLOSED
            and breaker.failures >= self.policy.breaker.failure_threshold
        ):
            breaker.state = _OPEN
            breaker.open_until = now + self._reset_cycles
            breaker.probe_in_flight = False
            self._counts["breaker_opens"] += 1
            self._push(breaker.open_until, _WAKE)

    def _evict(self, now: int, worker: _Worker) -> None:
        """Evict a dead/hung worker: hand its work back, schedule respawn."""
        health = self.policy.health
        cold = worker.state == _DEAD
        attempt = worker.attempt
        if attempt is not None and attempt.live:
            attempt.live = False
            for request in attempt.requests:
                tracker = self._trackers[request.rid]
                tracker.outstanding -= 1
                if tracker.done:
                    continue
                # graceful drain: hand the request back to the front of
                # its queue and refund the charged attempt -- the loss
                # was the server's fault, not the client's budget
                if not attempt.is_hedge:
                    tracker.tries = max(tracker.tries - 1, 0)
                tracker.handed_back += 1
                self._counts["handed_back"] += 1
                self._batcher.push_front(request)
                self._max_depth = max(self._max_depth, self._batcher.depth)
        worker.attempt = None
        worker.state = _RESTARTING
        worker.generation += 1
        worker.misses = 0
        self._counts["evictions"] += 1
        if cold:
            self._counts["respawns_cold"] += 1
            restart = _cycles(
                health.cold_restart_us, self.config.hardware.clock_hz
            )
        else:
            self._counts["respawns_warm"] += 1
            restart = _cycles(
                health.warm_restart_us, self.config.hardware.clock_hz
            )
        self._push(now + max(1, restart), _RESPAWN, (worker.wid, worker.generation))

    # -- closure -----------------------------------------------------------

    def _complete(self, now: int, tracker: _Tracker, attempt: _Attempt) -> None:
        tracker.done = True
        self._open_requests -= 1
        if attempt.is_hedge:
            self._counts["hedge_wins"] += 1
        self._records[tracker.request.rid] = RequestRecord(
            tracker.request,
            COMPLETED,
            stage=attempt.stage,
            batch_size=len(attempt.requests),
            dispatch_cycle=attempt.dispatch_cycle,
            completion_cycle=now,
            attempts=tracker.attempts,
            hedged=tracker.hedged,
            handed_back=tracker.handed_back,
            **decision_record_fields(
                tracker.request.model,
                attempt.decisions.get(tracker.request.rid),
            ),
        )

    def _fail(self, now: int, tracker: _Tracker, reason: str) -> None:
        tracker.done = True
        self._open_requests -= 1
        self._records[tracker.request.rid] = RequestRecord(
            tracker.request,
            FAILED,
            reject_reason=reason,
            completion_cycle=now,  # when the client stopped waiting
            attempts=tracker.attempts,
            hedged=tracker.hedged,
            handed_back=tracker.handed_back,
        )

    def _close(self, trace: list[Request]) -> ChaosResult:
        lost = 0
        for rid, tracker in self._trackers.items():
            if not tracker.done:
                # structurally unreachable (the deadline closes every
                # request); counted rather than asserted so the campaign
                # invariant, not a crash, reports any future regression
                lost += 1
                self._fail(self._last_cycle, tracker, FAIL_DEADLINE)
        records = [self._records[request.rid] for request in trace]
        summary = self._summarize(records, lost)
        return ChaosResult(
            config=self.config,
            faults=self.faults,
            policy=self.policy,
            seed=self.seed,
            records=records,
            summary=summary,
            max_queue_depth_seen=self._max_depth,
            simulated_cycles=self._last_cycle,
        )

    def _summarize(self, records: list[RequestRecord], lost: int) -> ChaosSummary:
        clock_hz = self.config.hardware.clock_hz
        to_ms = lambda cycles: cycles / clock_hz * 1e3  # noqa: E731
        completed = [r for r in records if r.completed]
        rejected = [r for r in records if r.outcome == REJECTED]
        failed = [r for r in records if r.failed]
        rejects_by_reason: dict = {}
        for r in rejected:
            reason = r.reject_reason or "unknown"
            rejects_by_reason[reason] = rejects_by_reason.get(reason, 0) + 1
        fails_by_reason: dict = {}
        for r in failed:
            reason = r.reject_reason or "unknown"
            fails_by_reason[reason] = fails_by_reason.get(reason, 0) + 1

        start = min((r.request.arrival_cycle for r in records), default=0)
        end = max(
            (
                r.completion_cycle
                if r.completion_cycle is not None
                else r.request.arrival_cycle
                for r in records
            ),
            default=0,
        )
        duration_cycles = max(end - start, 0)
        duration_s = duration_cycles / clock_hz

        latencies = sorted(to_ms(r.latency_cycles) for r in completed)
        if latencies:
            latency_ms = {
                "p50": percentile(latencies, 50),
                "p95": percentile(latencies, 95),
                "p99": percentile(latencies, 99),
                "mean": sum(latencies) / len(latencies),
                "max": latencies[-1],
            }
        else:
            latency_ms = {
                "p50": None, "p95": None, "p99": None, "mean": None, "max": None,
            }

        stage_counts = {stage: 0 for stage in SERVING_LADDER}
        for r in completed:
            if r.stage is not None:
                stage_counts[r.stage] = stage_counts.get(r.stage, 0) + 1

        admitted = len(completed) + len(failed)
        early_exits = sum(1 for r in completed if r.exited_early)
        return ChaosSummary(
            offered=len(records),
            admitted=admitted,
            completed=len(completed),
            rejected=len(rejected),
            failed=len(failed),
            rejects_by_reason=rejects_by_reason,
            fails_by_reason=fails_by_reason,
            duration_ms=to_ms(duration_cycles),
            goodput_rps=len(completed) / duration_s if duration_s > 0 else 0.0,
            success_rate=len(completed) / admitted if admitted else 0.0,
            latency_ms=latency_ms,
            duplicates=self._counts["duplicates"],
            lost=lost,
            stage_counts=stage_counts,
            early_exits=early_exits,
            mean_exit_depth=(
                sum(r.exit_depth for r in completed) / len(completed)
                if completed
                else 1.0
            ),
            mean_quality_drop=(
                sum(r.quality_drop for r in completed) / len(completed)
                if completed
                else 0.0
            ),
            **{
                key: self._counts[key]
                for key in self._counts
                if key != "duplicates"
            },
        )


def simulate_chaos(
    trace: TraceConfig | list[Request],
    config: ServerConfig | None = None,
    faults: WorkerFaultModel | None = None,
    policy: FaultTolerancePolicy | None = None,
    seed: int = 0,
    executor: BatchExecutor | None = None,
) -> ChaosResult:
    """Convenience wrapper: generate (if needed) and replay one trace."""
    if isinstance(trace, TraceConfig):
        trace = generate_trace(trace)
    simulator = FaultTolerantSimulator(
        config=config, faults=faults, policy=policy, seed=seed, executor=executor
    )
    return simulator.run(trace)
