"""The discrete-event serving simulator: queue -> batcher -> workers.

One :class:`ServingSimulator` replays an arrival trace against a
configured front end and produces the closed
:class:`~repro.serving.request.RequestRecord` set plus its
:class:`~repro.serving.slo.SloSummary`.  The event loop is a classic
three-event design over integer simulated cycles:

- **arrival**: the admission controller either rejects (token bucket /
  queue bound) or hands the request to the dynamic batcher;
- **worker-done**: a worker returns to the idle pool;
- **flush**: a queued request's max-wait deadline passed.

After every event the dispatcher drains: while a worker is idle and the
batcher has a dispatchable batch, the batch is priced by the
:class:`~repro.sim.batching.BatchExecutor` at the overload policy's
current rung and its completion is scheduled.  When workers are idle but
no batch is dispatchable yet, a flush event is scheduled for the earliest
max-wait deadline, so the loop never busy-waits and never misses one.

Everything is deterministic: the heap orders ties by insertion sequence,
the worker pool hands out the smallest idle id, and all times are
integers -- the same trace and configuration always produce the same
records (see ``tests/serving/test_server.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.dynamic.executor import DynamicBatchExecutor
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.batcher import BatchPolicy, DynamicBatcher
from repro.serving.loadgen import TraceConfig, generate_trace
from repro.serving.overload import OverloadPolicy
from repro.serving.quality import QualityPolicy, decision_record_fields
from repro.serving.request import COMPLETED, REJECTED, Request, RequestRecord
from repro.serving.slo import SloSummary, summarize
from repro.sim.batching import BatchExecutor, WorkerPool
from repro.sim.config import DuetConfig

__all__ = ["ServerConfig", "ServingResult", "ServingSimulator", "simulate_serving"]

_ARRIVAL, _DONE, _FLUSH = 0, 1, 2


@dataclass(frozen=True)
class ServerConfig:
    """Full configuration of the serving front end.

    Attributes:
        workers: simulated accelerator instances behind the queue.
        batch: dynamic-batching policy.
        admission: admission-control knobs.
        overload: occupancy -> degradation-rung policy.
        quality: occupancy -> early-exit-threshold policy (the depth
            axis; disabled by default, which serves every request at
            full static depth).
        hardware: the per-worker accelerator configuration (also fixes
            the simulated clock).
    """

    workers: int = 2
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    overload: OverloadPolicy = field(default_factory=OverloadPolicy)
    quality: QualityPolicy = field(default_factory=QualityPolicy.disabled)
    hardware: DuetConfig = field(default_factory=DuetConfig)

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(
                f"ServerConfig.workers must be >= 1, got {self.workers}"
            )


@dataclass
class ServingResult:
    """Everything one serving run produced.

    Attributes:
        config: the server configuration.
        records: one closed record per request, in arrival (rid) order.
        summary: the run's SLO account.
        max_queue_depth: deepest the pending queue ever got (always
            within ``config.admission.max_queue_depth``).
        simulated_cycles: cycle of the last event (makespan end).
    """

    config: ServerConfig
    records: list[RequestRecord]
    summary: SloSummary
    max_queue_depth: int
    simulated_cycles: int


class ServingSimulator:
    """Replays arrival traces against one serving configuration.

    Args:
        config: server configuration (defaults to ``ServerConfig()``).
        executor: batch executor; built from ``config.hardware`` when not
            supplied (exit-aware when the quality policy is enabled).
            Injecting a stub executor keeps policy-level tests free of
            accelerator simulation.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        executor: BatchExecutor | None = None,
    ):
        self.config = config if config is not None else ServerConfig()
        if executor is None:
            if self.config.quality.enabled:
                executor = DynamicBatchExecutor(config=self.config.hardware)
            else:
                executor = BatchExecutor(config=self.config.hardware)
        self.executor = executor

    def run(self, trace: list[Request]) -> ServingResult:
        """Simulate one trace to completion."""
        cfg = self.config
        clock_hz = cfg.hardware.clock_hz
        batcher = DynamicBatcher(cfg.batch, clock_hz=clock_hz)
        admission = AdmissionController(cfg.admission, clock_hz=clock_hz)
        pool = WorkerPool(cfg.workers)
        records: dict[int, RequestRecord] = {}
        events: list[tuple[int, int, int, object]] = []
        seq = 0
        for request in trace:
            heapq.heappush(events, (request.arrival_cycle, seq, _ARRIVAL, request))
            seq += 1

        max_depth = 0
        last_cycle = 0
        while events:
            now, _, kind, payload = heapq.heappop(events)
            last_cycle = max(last_cycle, now)
            if kind == _ARRIVAL:
                reason = admission.admit(now, batcher.depth)
                if reason is not None:
                    records[payload.rid] = RequestRecord(
                        payload, REJECTED, reject_reason=reason
                    )
                else:
                    batcher.push(payload)
                    max_depth = max(max_depth, batcher.depth)
            elif kind == _DONE:
                pool.release(payload)
            # _FLUSH events exist only to trigger the dispatch pass below
            seq = self._dispatch(now, batcher, pool, records, events, seq)

        ordered = [records[request.rid] for request in trace]
        return ServingResult(
            config=cfg,
            records=ordered,
            summary=summarize(ordered, clock_hz=clock_hz),
            max_queue_depth=max_depth,
            simulated_cycles=last_cycle,
        )

    def _dispatch(
        self,
        now: int,
        batcher: DynamicBatcher,
        pool: WorkerPool,
        records: dict[int, RequestRecord],
        events: list,
        seq: int,
    ) -> int:
        cfg = self.config
        while pool.idle:
            batch = batcher.pop_batch(now)
            if batch is None:
                break
            # the rung is decided at the pressure the dispatcher saw,
            # i.e. the depth including the batch it is about to serve
            pressure = batcher.depth + len(batch)
            stage = cfg.overload.stage_for(
                pressure, cfg.admission.max_queue_depth
            )
            worker = pool.acquire()
            if cfg.quality.enabled and isinstance(
                self.executor, DynamicBatchExecutor
            ):
                threshold = cfg.quality.threshold_for(
                    pressure, cfg.admission.max_queue_depth
                )
                result = self.executor.execute(
                    batch[0].model,
                    [r.workload_seed for r in batch],
                    stage=stage,
                    threshold=threshold,
                )
            else:
                result = self.executor.execute(
                    batch[0].model, [r.workload_seed for r in batch], stage=stage
                )
            decisions = getattr(result, "decisions", None)
            done = now + result.service_cycles
            for index, request in enumerate(batch):
                records[request.rid] = RequestRecord(
                    request,
                    COMPLETED,
                    stage=stage,
                    batch_size=len(batch),
                    dispatch_cycle=now,
                    completion_cycle=done,
                    **decision_record_fields(
                        request.model,
                        decisions[index] if decisions else None,
                    ),
                )
            heapq.heappush(events, (done, seq, _DONE, worker))
            seq += 1
        if pool.idle and batcher.depth:
            flush = batcher.next_flush_cycle()
            if flush is not None:
                heapq.heappush(events, (max(flush, now + 1), seq, _FLUSH, None))
                seq += 1
        return seq


def simulate_serving(
    trace: TraceConfig | list[Request],
    config: ServerConfig | None = None,
    executor: BatchExecutor | None = None,
) -> ServingResult:
    """Convenience wrapper: generate (if needed) and replay one trace."""
    if isinstance(trace, TraceConfig):
        trace = generate_trace(trace)
    return ServingSimulator(config=config, executor=executor).run(trace)
