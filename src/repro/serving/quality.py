"""Quality-aware shedding: map queue occupancy onto exit thresholds.

The second overload axis (ROADMAP "input-adaptive selective execution"):
before the :class:`~repro.serving.overload.OverloadPolicy` starts
climbing the reliability ladder, a :class:`QualityPolicy` sheds *depth* --
dispatches under queue pressure are served with a lower early-exit
confidence threshold, so easy inputs leave the network at shallow heads
and the batch finishes sooner.  The two axes compose deliberately:

- The quality breakpoints default *below* the ladder's first threshold
  (0.5 occupancy), so a pressured server first trades a bounded, priced
  accuracy delta (``repro.dynamic.costmodel``) for cycles, and only
  then starts shedding the Speculator's machinery.
- Quality shedding is per *input* -- only requests whose seeded
  confidence clears the (now lower) threshold exit early; hard inputs
  still run full depth at any occupancy.

Like the overload rung, the threshold tracks occupancy in both
directions (load is transient) and is monotone in occupancy: a deeper
queue never yields a *higher* threshold (deeper exits).  At zero
pressure the threshold is :data:`~repro.dynamic.decision.ALWAYS_LATE`
(1.0), which is bit-identical to static full-depth serving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamic.decision import ALWAYS_LATE
from repro.dynamic.executor import decision_drop

__all__ = ["QualityPolicy", "decision_record_fields"]


def decision_record_fields(model: str, decision) -> dict:
    """``RequestRecord`` keyword fields for one sample's exit decision.

    Empty for static service (no decision), so records of quality-unaware
    runs keep their default exit fields.
    """
    if decision is None:
        return {}
    return {
        "exit": decision.exit_name,
        "exit_depth": decision.depth_fraction,
        "quality_drop": decision_drop(model, decision),
    }


@dataclass(frozen=True)
class QualityPolicy:
    """Occupancy breakpoints selecting the exit-confidence threshold.

    Attributes:
        occupancies: ascending occupancy fractions; a dispatch whose
            queue occupancy strictly exceeds the i-th breakpoint is
            served at ``thresholds[i]`` (the deepest exceeded breakpoint
            wins).  Below every breakpoint the threshold is
            ``ALWAYS_LATE`` -- full static depth.
        thresholds: exit-confidence thresholds paired with
            ``occupancies``, descending (more pressure, lower threshold,
            shallower permitted exits).
    """

    occupancies: tuple[float, ...] = (0.25, 0.4)
    thresholds: tuple[float, ...] = (0.85, 0.6)

    def __post_init__(self):
        if len(self.occupancies) != len(self.thresholds):
            raise ValueError(
                f"QualityPolicy needs one threshold per occupancy "
                f"breakpoint, got {len(self.occupancies)} occupancies and "
                f"{len(self.thresholds)} thresholds"
            )
        if list(self.occupancies) != sorted(self.occupancies):
            raise ValueError(
                f"QualityPolicy.occupancies must be ascending, got "
                f"{self.occupancies}"
            )
        for occupancy in self.occupancies:
            if not 0.0 <= occupancy <= 1.0:
                raise ValueError(
                    f"QualityPolicy.occupancies must lie in [0, 1], got "
                    f"{occupancy}"
                )
        if list(self.thresholds) != sorted(self.thresholds, reverse=True):
            raise ValueError(
                f"QualityPolicy.thresholds must be descending (more "
                f"pressure, shallower exits), got {self.thresholds}"
            )
        for threshold in self.thresholds:
            if not 0.0 <= threshold <= 1.0:
                raise ValueError(
                    f"QualityPolicy.thresholds must lie in [0, 1], got "
                    f"{threshold}"
                )

    @classmethod
    def disabled(cls) -> "QualityPolicy":
        """A policy that always serves at full static depth."""
        return cls(occupancies=(), thresholds=())

    @property
    def enabled(self) -> bool:
        """True when any occupancy level sheds quality."""
        return bool(self.occupancies)

    def threshold_for(self, queue_depth: int, queue_bound: int) -> float:
        """The exit-confidence threshold for a dispatch decided at
        ``queue_depth`` pending requests under a ``queue_bound``-deep
        queue.  Monotone: deeper queue, never a higher threshold."""
        if queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {queue_bound}")
        occupancy = queue_depth / queue_bound
        level = sum(occupancy > breakpoint for breakpoint in self.occupancies)
        if level == 0:
            return ALWAYS_LATE
        return self.thresholds[level - 1]
