"""Seeded open-loop load generation: Poisson and bursty arrival processes.

The generator produces an **arrival trace** -- a list of
:class:`~repro.serving.request.Request` sorted by arrival cycle -- that
the serving simulator then replays.  Open-loop means arrivals do not slow
down when the server backs up (a million independent users do not
coordinate), which is exactly the regime where admission control and
load shedding earn their keep.

Two arrival processes:

- ``poisson``: independent exponential inter-arrival gaps at
  ``rate_rps`` -- the classic memoryless baseline.
- ``bursty``: a two-state modulated Poisson process that alternates a
  *hot* phase at ``rate_rps * burst_factor`` and a *quiet* phase at
  ``rate_rps / burst_factor``; after every arrival the phase flips with
  probability ``switch_probability``, giving geometrically-distributed
  run lengths of clumped and sparse traffic.  Same marginal gap scale,
  far heavier tail pressure on the queue -- the case *SparseNN*-style
  per-sample variation makes against static batch scheduling.

Every trace is a pure function of its :class:`TraceConfig` (one
`numpy` generator seeded from ``seed``), so campaigns are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.request import Request

__all__ = [
    "ARRIVAL_PROCESSES",
    "ClosedLoopConfig",
    "TraceConfig",
    "generate_trace",
]

#: The supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "bursty")


@dataclass(frozen=True)
class TraceConfig:
    """Configuration of one generated arrival trace.

    Attributes:
        n_requests: trace length.
        rate_rps: mean arrival rate in requests per simulated second
            (for ``bursty``, the geometric mean of the two phase rates).
        arrival: one of :data:`ARRIVAL_PROCESSES`.
        models: benchmark models in the traffic mix.
        model_weights: mix probabilities (uniform when None).
        workload_variants: per-request workload seeds are drawn from
            ``[0, workload_variants)`` -- the number of distinct input
            samples circulating in the traffic.
        seed: trace seed.
        clock_hz: simulated clock for second -> cycle conversion.
        burst_factor: hot/quiet rate multiplier of the bursty process.
        switch_probability: per-arrival phase-flip probability.
    """

    n_requests: int = 1000
    rate_rps: float = 200.0
    arrival: str = "poisson"
    models: tuple[str, ...] = ("alexnet", "lstm")
    model_weights: tuple[float, ...] | None = None
    workload_variants: int = 4
    seed: int = 0
    clock_hz: float = 1e9
    burst_factor: float = 4.0
    switch_probability: float = 0.02

    def __post_init__(self):
        if self.n_requests < 1:
            raise ValueError(
                f"TraceConfig.n_requests must be >= 1, got {self.n_requests}"
            )
        if self.rate_rps <= 0:
            raise ValueError(
                f"TraceConfig.rate_rps must be positive, got {self.rate_rps}"
            )
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"TraceConfig.arrival must be one of {ARRIVAL_PROCESSES}, "
                f"got {self.arrival!r}"
            )
        if not self.models:
            raise ValueError("TraceConfig.models must name at least one model")
        if self.model_weights is not None:
            if len(self.model_weights) != len(self.models):
                raise ValueError(
                    f"TraceConfig.model_weights has {len(self.model_weights)} "
                    f"entries for {len(self.models)} models"
                )
            if any(w < 0 for w in self.model_weights) or not sum(self.model_weights):
                raise ValueError(
                    "TraceConfig.model_weights must be non-negative and sum "
                    "to a positive total"
                )
        if self.workload_variants < 1:
            raise ValueError(
                f"TraceConfig.workload_variants must be >= 1, got "
                f"{self.workload_variants}"
            )
        if self.burst_factor < 1:
            raise ValueError(
                f"TraceConfig.burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not 0.0 <= self.switch_probability <= 1.0:
            raise ValueError(
                f"TraceConfig.switch_probability must be in [0, 1], got "
                f"{self.switch_probability}"
            )


@dataclass(frozen=True)
class ClosedLoopConfig:
    """A closed-loop client population with an exponential think-time
    model.

    Open-loop traces (:class:`TraceConfig`) model independent anonymous
    traffic; a *closed* loop models a finite population of sessions:
    each client issues one request, waits for its terminal outcome, then
    "thinks" for an exponentially-distributed pause before issuing the
    next -- so offered load self-regulates with server latency (the
    interactive-session regime of the fleet tier,
    :mod:`repro.serving.fleet`).

    Every client's request/think stream descends from its own
    ``SeedSequence`` child of ``seed``, so the population replays
    byte-identically regardless of completion interleaving.

    Attributes:
        clients: concurrent sessions.
        requests_per_client: requests each session issues before leaving.
        think_time_us: mean think pause in simulated microseconds.
        models: traffic-mix models (uniform mix).
        workload_variants: per-request workload seeds are drawn from
            ``[0, workload_variants)``.
        seed: population seed.
        clock_hz: simulated clock for second -> cycle conversion.
    """

    clients: int = 8
    requests_per_client: int = 25
    think_time_us: float = 2000.0
    models: tuple[str, ...] = ("alexnet", "lstm")
    workload_variants: int = 4
    seed: int = 0
    clock_hz: float = 1e9

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError(
                f"ClosedLoopConfig.clients must be >= 1, got {self.clients}"
            )
        if self.requests_per_client < 1:
            raise ValueError(
                f"ClosedLoopConfig.requests_per_client must be >= 1, got "
                f"{self.requests_per_client}"
            )
        if self.think_time_us < 0:
            raise ValueError(
                f"ClosedLoopConfig.think_time_us must be >= 0, got "
                f"{self.think_time_us}"
            )
        if not self.models:
            raise ValueError(
                "ClosedLoopConfig.models must name at least one model"
            )
        if self.workload_variants < 1:
            raise ValueError(
                f"ClosedLoopConfig.workload_variants must be >= 1, got "
                f"{self.workload_variants}"
            )

    def client_rng(self, client: int) -> np.random.Generator:
        """The seeded generator driving client ``client``'s stream."""
        if not 0 <= client < self.clients:
            raise ValueError(
                f"client must be in [0, {self.clients}), got {client}"
            )
        children = np.random.SeedSequence(self.seed).spawn(self.clients)
        return np.random.default_rng(children[client])

    def think_cycles(self, rng: np.random.Generator) -> int:
        """One exponential think pause, in simulated cycles."""
        if self.think_time_us <= 0:
            return 0
        seconds = float(rng.exponential(self.think_time_us * 1e-6))
        return int(round(seconds * self.clock_hz))

    def draw_request(self, rng: np.random.Generator) -> tuple[str, int]:
        """One ``(model, workload_seed)`` draw from the client's mix."""
        model = self.models[int(rng.integers(len(self.models)))]
        return model, int(rng.integers(self.workload_variants))


def generate_trace(config: TraceConfig) -> list[Request]:
    """Generate one arrival trace; a pure function of ``config``."""
    rng = np.random.default_rng(config.seed)
    weights = config.model_weights
    if weights is None:
        probabilities = np.full(len(config.models), 1.0 / len(config.models))
    else:
        probabilities = np.asarray(weights, dtype=float) / sum(weights)

    hot = config.arrival == "bursty"  # bursty traces open in the hot phase
    t_seconds = 0.0
    trace: list[Request] = []
    for rid in range(config.n_requests):
        if config.arrival == "poisson":
            rate = config.rate_rps
        else:
            rate = (
                config.rate_rps * config.burst_factor
                if hot
                else config.rate_rps / config.burst_factor
            )
            if rng.random() < config.switch_probability:
                hot = not hot
        t_seconds += float(rng.exponential(1.0 / rate))
        model = config.models[int(rng.choice(len(config.models), p=probabilities))]
        trace.append(
            Request(
                rid=rid,
                model=model,
                arrival_cycle=int(round(t_seconds * config.clock_hz)),
                workload_seed=int(rng.integers(config.workload_variants)),
            )
        )
    return trace
