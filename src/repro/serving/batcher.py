"""Dynamic batching: per-model FIFO queues with max-batch / max-wait dispatch.

Requests for the *same model* can share a batch -- the accelerator
fetches the model's weights once and streams the batch's ifmaps through
them ("batches of ifmap", paper Section IV-A) -- so the batcher keeps one
FIFO queue per model and never mixes models in a dispatch.

Two classic dispatch conditions, whichever fires first:

- **max-batch**: a queue that has accumulated ``max_batch`` requests is
  dispatchable immediately (a full batch gains nothing by waiting);
- **max-wait**: a queue whose *oldest* request has waited
  ``max_wait_us`` is dispatchable with whatever it has -- the microbatch
  deadline that bounds the latency cost of waiting for co-batchable
  traffic.  ``max_wait_us=0`` degenerates to batchless FIFO serving.

When several queues are dispatchable the one with the oldest head goes
first (FIFO fairness across models); within a queue, strict FIFO.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.serving.request import Request

__all__ = ["BatchPolicy", "DynamicBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Dispatch policy of the dynamic batcher.

    Attributes:
        max_batch: largest batch a single dispatch may carry (1 =
            batching disabled).
        max_wait_us: longest a request may sit queued waiting for
            co-batchable traffic before its queue is force-flushed, in
            simulated microseconds.
    """

    max_batch: int = 8
    max_wait_us: float = 200.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(
                f"BatchPolicy.max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_us < 0:
            raise ValueError(
                f"BatchPolicy.max_wait_us must be >= 0, got {self.max_wait_us}"
            )

    def max_wait_cycles(self, clock_hz: float) -> int:
        """The microbatch deadline in simulated cycles."""
        return int(round(self.max_wait_us * 1e-6 * clock_hz))


class DynamicBatcher:
    """Per-model FIFO queues + the two-condition dispatch rule.

    Args:
        policy: dispatch policy (defaults to ``BatchPolicy()``).
        clock_hz: simulated clock, for the microsecond deadline.
    """

    def __init__(self, policy: BatchPolicy | None = None, clock_hz: float = 1e9):
        self.policy = policy if policy is not None else BatchPolicy()
        self._wait_cycles = self.policy.max_wait_cycles(clock_hz)
        self._queues: dict[str, deque[Request]] = {}
        self.depth = 0

    def push(self, request: Request) -> None:
        """Queue one admitted request."""
        self._queues.setdefault(request.model, deque()).append(request)
        self.depth += 1

    def push_front(self, request: Request) -> None:
        """Re-queue a handed-back request at the front of its model queue.

        Used by graceful drain: an evicted worker's not-yet-served work
        re-enters ahead of younger traffic, preserving the FIFO order the
        original dispatch honoured.
        """
        self._queues.setdefault(request.model, deque()).appendleft(request)
        self.depth += 1

    def _dispatchable(self, queue: deque[Request], now_cycle: int) -> bool:
        if len(queue) >= self.policy.max_batch:
            return True
        return now_cycle - queue[0].arrival_cycle >= self._wait_cycles

    def pop_batch(self, now_cycle: int) -> list[Request] | None:
        """Remove and return the next dispatchable batch, or None.

        Among dispatchable queues the one whose head arrived first wins;
        the batch is the queue's first ``max_batch`` requests.
        """
        best = None
        for model, queue in self._queues.items():
            if not self._dispatchable(queue, now_cycle):
                continue
            if best is None or queue[0].arrival_cycle < best[0].arrival_cycle:
                best = (queue[0], model, queue)
        if best is None:
            return None
        _, model, queue = best
        batch = [queue.popleft() for _ in range(min(len(queue), self.policy.max_batch))]
        if not queue:
            del self._queues[model]
        self.depth -= len(batch)
        return batch

    def next_flush_cycle(self) -> int | None:
        """Earliest cycle at which a currently-queued request forces a
        flush (its queue's max-wait deadline), or None when empty."""
        heads = [q[0].arrival_cycle for q in self._queues.values()]
        if not heads:
            return None
        return min(heads) + self._wait_cycles
