"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list-models``           registered benchmark models.
- ``simulate``              run one model on one configuration.
- ``stages``                the OS/BOS/IOS/DUET technique breakdown.
- ``compare``               DUET vs the SOTA comparison accelerators.
- ``area``                  the Table-I area breakdown.
- ``faults``                run one fault campaign (``--model``) and
  print the degradation report, or the whole sharded campaign matrix
  (no ``--model``) and write ``BENCH_faults.json``.
- ``bench``                 time the fast path against the slow-path
  oracle and write ``BENCH_duet.json``.
- ``serve``                 simulate the serving front end on one seeded
  arrival trace and print the SLO report.
- ``loadgen``               run the serving scenario campaign and write
  ``BENCH_serving.json``.
- ``chaos``                 run the fault-tolerant serving sweep (fault
  rate x recovery policy) and write ``BENCH_chaos.json``.
- ``fleet``                 run the fleet-scale sharded-serving campaign
  (sharding, SLO classes, autoscaling, closed loop) and write
  ``BENCH_fleet.json``.
- ``dynamic``               run the selective-execution campaign
  (early-exit Pareto sweep, static parity, quality-vs-ladder overload
  serving) and write ``BENCH_dynamic.json``.
- ``lint``                  run duetlint, the project-specific static
  analysis (exit 0 clean, 1 findings, 2 usage error).

Every command prints a plain-text table; all simulations are seeded and
deterministic.  Usage errors (unknown model, incompatible flags) exit
with status 2 and a one-line message on stderr -- never a traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.cli import cmd_lint, configure_parser as configure_lint_parser
from repro.baselines import cnvlutin, eyeriss, predict, predict_cnvlutin, snapea
from repro.bench import (
    SUITES,
    run_bench,
    run_chaos_bench,
    run_dynamic_bench,
    run_fault_matrix,
    run_fleet_bench,
    run_serving_bench,
)
from repro.models import MODEL_REGISTRY, get_model_spec
from repro.reliability import CAMPAIGNS, GuardSettings, run_fault_campaign
from repro.reporting import format_percent
from repro.serving import (
    ARRIVAL_PROCESSES,
    AdmissionConfig,
    BatchPolicy,
    ServerConfig,
    TraceConfig,
    simulate_serving,
)
from repro.sim import AreaModel, DuetAccelerator
from repro.sim.config import STAGES
from repro.workloads import SparsityModel, cnn_workloads, rnn_workloads

__all__ = ["main", "build_parser", "CliError"]


class CliError(Exception):
    """A usage error the CLI reports as ``error: <message>`` (exit 2)."""


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DUET dual-module accelerator simulator (MICRO 2020 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="list registered benchmark models")

    p_sim = sub.add_parser("simulate", help="simulate one model")
    p_sim.add_argument("--model", required=True, choices=sorted(MODEL_REGISTRY))
    p_sim.add_argument("--stage", default="DUET", choices=STAGES)
    p_sim.add_argument(
        "--include-fc", action="store_true",
        help="include FC classifier layers (CNN models)",
    )
    p_sim.add_argument("--seed", type=int, default=0, help="sparsity seed")

    p_stages = sub.add_parser("stages", help="OS/BOS/IOS/DUET breakdown")
    p_stages.add_argument("--model", required=True, choices=sorted(MODEL_REGISTRY))
    p_stages.add_argument("--seed", type=int, default=0)

    p_cmp = sub.add_parser("compare", help="DUET vs SOTA accelerators")
    p_cmp.add_argument("--model", required=True, choices=sorted(MODEL_REGISTRY))
    p_cmp.add_argument("--seed", type=int, default=0)

    sub.add_parser("area", help="Table-I area breakdown")

    p_faults = sub.add_parser(
        "faults",
        help=(
            "run one fault campaign (--model) or the whole sharded "
            "matrix (no --model), writing BENCH_faults.json"
        ),
    )
    p_faults.add_argument(
        "--model", choices=sorted(MODEL_REGISTRY), default=None,
        help="single-campaign mode: the model to run (omit for the matrix)",
    )
    p_faults.add_argument(
        "--campaign",
        default="smoke",
        choices=sorted(CAMPAIGNS),
        help="built-in fault campaign to apply (single-campaign mode)",
    )
    p_faults.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_faults.add_argument(
        "--stage", default="DUET", choices=STAGES,
        help="degradation-ladder rung the run starts at",
    )
    p_faults.add_argument(
        "--no-guards", action="store_true",
        help="disable the online guards (show the unprotected failure mode)",
    )
    p_faults.add_argument(
        "--smoke", action="store_true",
        help="matrix mode: CI-sized grid instead of the full matrix",
    )
    p_faults.add_argument(
        "--jobs", type=int, default=1,
        help="matrix mode: worker processes (results identical for any N)",
    )
    p_faults.add_argument(
        "--output", default="BENCH_faults.json",
        help="matrix mode: result path (default BENCH_faults.json)",
    )
    p_faults.add_argument(
        "--no-perf", action="store_true",
        help=(
            "matrix mode: omit the wall-clock perf block and history so "
            "documents compare byte-identical across worker counts"
        ),
    )

    p_bench = sub.add_parser(
        "bench",
        help="time the fast path vs the slow-path oracle, write BENCH_duet.json",
    )
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="reduced suite subset and model lists (CI-sized)",
    )
    p_bench.add_argument(
        "--suite", action="append", choices=sorted(SUITES), default=None,
        help="run only the named suite (repeatable)",
    )
    p_bench.add_argument(
        "--warmup", type=int, default=1,
        help="untimed runs per path before timing (default 1)",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=3,
        help="timed runs per path; the minimum is reported (default 3)",
    )
    p_bench.add_argument(
        "--output", default="BENCH_duet.json",
        help="result path (default BENCH_duet.json at the repo root)",
    )
    p_bench.add_argument(
        "--list", action="store_true", dest="list_suites",
        help="list registered suites and exit",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (simulated results identical for any N)",
    )
    p_bench.add_argument(
        "--no-perf", action="store_true",
        help=(
            "omit wall-clock fields, the perf block and history so "
            "documents compare byte-identical across worker counts"
        ),
    )

    p_serve = sub.add_parser(
        "serve",
        help="simulate the serving front end on one seeded arrival trace",
    )
    p_serve.add_argument(
        "--model", action="append", choices=sorted(MODEL_REGISTRY), default=None,
        help="traffic-mix model (repeatable; default alexnet + lstm)",
    )
    p_serve.add_argument("--requests", type=int, default=1000, help="trace length")
    p_serve.add_argument(
        "--rate", type=float, default=200.0,
        help="mean arrival rate in requests per simulated second",
    )
    p_serve.add_argument(
        "--arrival", default="poisson", choices=ARRIVAL_PROCESSES,
        help="arrival process",
    )
    p_serve.add_argument("--seed", type=int, default=0, help="trace seed")
    p_serve.add_argument(
        "--workers", type=int, default=2, help="simulated accelerator workers"
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8, help="dynamic-batching cap (1 = off)"
    )
    p_serve.add_argument(
        "--max-wait-us", type=float, default=200.0,
        help="microbatch deadline in simulated microseconds",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission queue bound (arrivals beyond it are rejected)",
    )
    p_serve.add_argument(
        "--rate-limit", type=float, default=None,
        help="token-bucket sustained admit rate in req/s (default: off)",
    )
    p_serve.add_argument(
        "--variants", type=int, default=4,
        help="distinct workload samples circulating in the traffic",
    )

    p_load = sub.add_parser(
        "loadgen",
        help="run the serving scenario campaign, write BENCH_serving.json",
    )
    p_load.add_argument(
        "--smoke", action="store_true",
        help="CI-sized campaign (~2k requests instead of ~10k)",
    )
    p_load.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_load.add_argument(
        "--workers", type=int, default=2, help="simulated accelerator workers"
    )
    p_load.add_argument(
        "--max-batch", type=int, default=8,
        help="dynamic-batching cap of the batched arms",
    )
    p_load.add_argument(
        "--arrival", default="poisson", choices=ARRIVAL_PROCESSES,
        help="arrival process of every scenario trace",
    )
    p_load.add_argument(
        "--scale", type=float, default=1.0,
        help="request-count multiplier (floor 20 per scenario)",
    )
    p_load.add_argument(
        "--slow-path", action="store_true",
        help="simulate on the per-event slow-path oracle instead",
    )
    p_load.add_argument(
        "--output", default="BENCH_serving.json",
        help="result path (default BENCH_serving.json at the repo root)",
    )
    p_load.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (simulated results identical for any N)",
    )
    p_load.add_argument(
        "--no-perf", action="store_true",
        help=(
            "omit the wall-clock perf block and history so documents "
            "compare byte-identical across worker counts"
        ),
    )

    p_chaos = sub.add_parser(
        "chaos",
        help=(
            "run the fault-tolerant serving sweep (fault rate x recovery "
            "policy), write BENCH_chaos.json"
        ),
    )
    p_chaos.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep (2 rates, 120 requests/cell) instead of full",
    )
    p_chaos.add_argument("--seed", type=int, default=0, help="campaign root seed")
    p_chaos.add_argument(
        "--workers", type=int, default=3, help="simulated accelerators in the fleet"
    )
    p_chaos.add_argument(
        "--slow-path", action="store_true",
        help="simulate on the per-event slow-path oracle instead",
    )
    p_chaos.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (simulated results identical for any N)",
    )
    p_chaos.add_argument(
        "--output", default="BENCH_chaos.json",
        help="result path (default BENCH_chaos.json at the repo root)",
    )
    p_chaos.add_argument(
        "--no-perf", action="store_true",
        help=(
            "omit the wall-clock perf block and history so documents "
            "compare byte-identical across worker counts"
        ),
    )

    p_fleet = sub.add_parser(
        "fleet",
        help=(
            "run the fleet-scale sharded-serving campaign (sharding, SLO "
            "classes, autoscaling, closed loop), write BENCH_fleet.json"
        ),
    )
    p_fleet.add_argument(
        "--smoke", action="store_true",
        help="CI-sized scenarios (150 requests / 6 clients) instead of full",
    )
    p_fleet.add_argument("--seed", type=int, default=0, help="campaign root seed")
    p_fleet.add_argument(
        "--slow-path", action="store_true",
        help="simulate on the per-event slow-path oracle instead",
    )
    p_fleet.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (simulated results identical for any N)",
    )
    p_fleet.add_argument(
        "--output", default="BENCH_fleet.json",
        help="result path (default BENCH_fleet.json at the repo root)",
    )
    p_fleet.add_argument(
        "--capacity-source", default="BENCH_serving.json",
        help=(
            "measured BENCH_serving.json feeding placement decisions "
            "(default BENCH_serving.json; missing file uses the recorded "
            "fallback capacity)"
        ),
    )
    p_fleet.add_argument(
        "--no-perf", action="store_true",
        help=(
            "omit the wall-clock perf block and history so documents "
            "compare byte-identical across worker counts"
        ),
    )

    p_dynamic = sub.add_parser(
        "dynamic",
        help=(
            "run the selective-execution campaign (early-exit Pareto "
            "sweep, static parity, quality-vs-ladder overload serving), "
            "write BENCH_dynamic.json"
        ),
    )
    p_dynamic.add_argument(
        "--smoke", action="store_true",
        help="CI-sized grid (12 inputs, 150-request traces) instead of full",
    )
    p_dynamic.add_argument("--seed", type=int, default=0, help="campaign root seed")
    p_dynamic.add_argument(
        "--slow-path", action="store_true",
        help="simulate on the per-event slow-path oracle instead",
    )
    p_dynamic.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (simulated results identical for any N)",
    )
    p_dynamic.add_argument(
        "--output", default="BENCH_dynamic.json",
        help="result path (default BENCH_dynamic.json at the repo root)",
    )
    p_dynamic.add_argument(
        "--no-perf", action="store_true",
        help=(
            "omit the wall-clock perf block and history so documents "
            "compare byte-identical across worker counts"
        ),
    )

    p_lint = sub.add_parser(
        "lint",
        help="run duetlint, the project-specific static analysis",
    )
    configure_lint_parser(p_lint)
    return parser


def _workloads_for(spec, seed: int, include_fc: bool = False):
    sparsity = SparsityModel(seed=seed)
    if spec.domain == "cnn":
        return cnn_workloads(spec, sparsity, include_fc=include_fc)
    return rnn_workloads(spec, sparsity)


def _cmd_list_models(_args, out) -> int:
    for name in sorted(MODEL_REGISTRY):
        spec = get_model_spec(name)
        out.write(
            f"{name:10s} {spec.domain:4s} {len(spec.layers):3d} layers "
            f"{spec.total_macs / 1e9:6.2f} GMACs "
            f"{spec.total_weight_elements / 1e6:7.1f} M weights\n"
        )
    return 0


def _cmd_simulate(args, out) -> int:
    spec = get_model_spec(args.model)
    if args.include_fc and spec.domain != "cnn":
        raise CliError(
            f"--include-fc applies to CNN models; {args.model} is an RNN"
        )
    workloads = _workloads_for(spec, args.seed, args.include_fc)
    report = DuetAccelerator(stage=args.stage).run(spec, workloads=workloads)
    out.write(f"{args.model} on {args.stage}:\n")
    out.write(
        f"{'layer':>18s} {'cycles':>12s} {'exec':>10s} {'spec':>8s} "
        f"{'mem':>10s} {'util':>5s}\n"
    )
    for layer in report.layers:
        out.write(
            f"{layer.name:>18s} {layer.total_cycles:12,} "
            f"{layer.executor_cycles:10,} {layer.speculator_cycles:8,} "
            f"{layer.memory_cycles:10,} {layer.utilization:5.2f}\n"
        )
    out.write(
        f"total: {report.total_cycles:,} cycles = {report.latency_ms:.3f} ms, "
        f"energy {report.energy.total / 1e9:.3f} (norm. units)\n"
    )
    return 0


def _cmd_stages(args, out) -> int:
    spec = get_model_spec(args.model)
    workloads = _workloads_for(spec, args.seed)
    base = None
    out.write(f"{args.model}: technique breakdown (paper Fig. 12a)\n")
    for stage in STAGES:
        report = DuetAccelerator(stage=stage).run(spec, workloads=workloads)
        if stage == "BASE":
            base = report
        out.write(
            f"  {stage:5s} {report.latency_ms:8.3f} ms  "
            f"speedup {report.speedup_over(report) if base is None else base.total_cycles / report.total_cycles:5.2f}x  "
            f"util {report.mean_utilization:5.2f}\n"
        )
    return 0


def _cmd_compare(args, out) -> int:
    spec = get_model_spec(args.model)
    if spec.domain != "cnn":
        raise CliError(
            "compare supports CNN models only (Fig. 11b is CNN-only)"
        )
    workloads = _workloads_for(spec, args.seed)
    duet = DuetAccelerator(stage="DUET").run(spec, workloads=workloads)
    out.write(f"{args.model}: normalised to DUET = 1.0 (paper Fig. 11b)\n")
    out.write(f"{'design':>18s} {'latency':>8s} {'energy':>8s} {'EDP':>8s}\n")
    for name, factory in (
        ("eyeriss", eyeriss),
        ("cnvlutin", cnvlutin),
        ("snapea", snapea),
        ("predict", predict),
        ("predict+cnvlutin", predict_cnvlutin),
    ):
        r = factory().run(spec, workloads)
        out.write(
            f"{name:>18s} {r.total_cycles / duet.total_cycles:7.2f}x "
            f"{r.energy.total / duet.energy.total:7.2f}x "
            f"{r.edp() / duet.edp():7.2f}x\n"
        )
    return 0


def _cmd_area(_args, out) -> int:
    breakdown = AreaModel().breakdown()
    out.write("DUET area breakdown (paper Table I)\n")
    for name, mm2, frac in breakdown.as_rows():
        out.write(f"{name:>30s} {mm2:8.3f} mm^2 {frac:6.1%}\n")
    out.write(
        f"{'Executor total':>30s} {breakdown.executor_total:8.3f} mm^2 "
        f"{breakdown.fraction(breakdown.executor_total):6.1%}\n"
    )
    out.write(
        f"{'Speculator total':>30s} {breakdown.speculator_total:8.3f} mm^2 "
        f"{breakdown.fraction(breakdown.speculator_total):6.1%}\n"
    )
    return 0


def _cmd_faults(args, out) -> int:
    if args.jobs < 1:
        raise CliError(f"--jobs must be >= 1, got {args.jobs}")
    if args.model is not None:
        report = run_fault_campaign(
            model=args.model,
            campaign=args.campaign,
            seed=args.seed,
            guards=GuardSettings(enabled=not args.no_guards),
            initial_stage=args.stage,
        )
        out.write(report.format() + "\n")
        return 0
    if args.no_guards:
        raise CliError(
            "--no-guards needs --model; the matrix runs guarded and "
            "unguarded arms itself"
        )
    out.write(
        f"{'model':>10s} {'campaign':>16s} {'guards':>6s} {'stage':>6s} "
        f"{'events':>6s} {'retries':>8s} {'invariant':>9s}\n"
    )

    def _progress(record):
        out.write(
            f"{record['model']:>10s} {record['campaign']:>16s} "
            f"{'on' if record['guards'] else 'off':>6s} "
            f"{record['final_stage']:>6s} {record['degradation_events']:6d} "
            f"{record['dram_retries']:8d} "
            f"{'PASS' if record['invariant_held'] else 'VIOLATED':>9s}\n"
        )

    document = run_fault_matrix(
        smoke=args.smoke,
        root_seed=args.seed,
        jobs=args.jobs,
        output=args.output,
        with_perf=not args.no_perf,
        progress=_progress,
    )
    agg = document["aggregates"]
    perf = document.get("perf")
    if perf is not None:
        out.write(
            f"{agg['tasks']} cells in {perf['wall_s']:.2f}s wall "
            f"({args.jobs} job(s), {perf['worker_efficiency']:.0%} worker "
            f"efficiency, ~{perf['speedup_vs_serial_est']:.2f}x vs serial "
            f"est.); results in {args.output}\n"
        )
    else:
        out.write(
            f"{agg['tasks']} cells; results in {args.output}\n"
        )
    if not document["all_guarded_invariants_held"]:
        raise CliError(
            f"values-never-corrupted invariant: VIOLATED in "
            f"{agg['guarded_invariant_violations']} guarded cell(s)"
        )
    out.write(
        f"values-never-corrupted invariant: PASS across "
        f"{agg['guarded']} guarded cells "
        f"({agg['unguarded_invariant_violations']}/{agg['unguarded']} "
        "unguarded foils corrupted, as expected)\n"
    )
    return 0


def _cmd_bench(args, out) -> int:
    if args.list_suites:
        for name in sorted(SUITES):
            suite = SUITES[name]
            marker = "smoke+full" if suite.in_smoke else "full"
            out.write(
                f"{name:26s} {suite.figure:14s} [{marker}] {suite.description}\n"
            )
        return 0
    out.write(
        f"{'suite':>26s} {'fast s':>9s} {'slow s':>9s} {'speedup':>8s} "
        f"{'equivalence':>13s}\n"
    )

    def _progress(record):
        out.write(
            f"{record['name']:>26s} {record['wall_time_s']['fast']:9.3f} "
            f"{record['wall_time_s']['slow']:9.3f} "
            f"{record['speedup_vs_slow_path']:7.1f}x "
            f"{record['equivalence']:>13s}\n"
        )

    if args.jobs < 1:
        raise CliError(f"--jobs must be >= 1, got {args.jobs}")
    document = run_bench(
        suite_names=args.suite,
        smoke=args.smoke,
        warmup=args.warmup,
        repeat=args.repeat,
        output=args.output,
        progress=_progress,
        jobs=args.jobs,
        with_perf=not args.no_perf,
    )
    geomean = document.get("geomean_speedup_vs_slow_path")
    if geomean is not None:
        out.write(
            f"geomean speedup {geomean:.1f}x over the slow-path oracle; "
            f"results in {args.output}\n"
        )
    else:
        out.write(f"results in {args.output}\n")
    if not document["all_equivalent"]:
        raise CliError(
            "fast path diverged from the slow-path oracle "
            "(see the MISMATCH suites above)"
        )
    return 0


def _cmd_serve(args, out) -> int:
    if args.requests < 1:
        raise CliError(f"--requests must be >= 1, got {args.requests}")
    if args.rate <= 0:
        raise CliError(f"--rate must be positive, got {args.rate}")
    if args.workers < 1:
        raise CliError(f"--workers must be >= 1, got {args.workers}")
    if args.max_batch < 1:
        raise CliError(f"--max-batch must be >= 1, got {args.max_batch}")
    models = tuple(args.model) if args.model else ("alexnet", "lstm")
    trace = TraceConfig(
        n_requests=args.requests,
        rate_rps=args.rate,
        arrival=args.arrival,
        models=models,
        workload_variants=args.variants,
        seed=args.seed,
    )
    server = ServerConfig(
        workers=args.workers,
        batch=BatchPolicy(max_batch=args.max_batch, max_wait_us=args.max_wait_us),
        admission=AdmissionConfig(
            max_queue_depth=args.queue_depth, rate_limit_rps=args.rate_limit
        ),
    )
    result = simulate_serving(trace, config=server)
    out.write(
        f"serving {', '.join(models)} at {args.rate:g} req/s ({args.arrival}, "
        f"seed {args.seed}): {args.workers} worker(s), max batch "
        f"{args.max_batch}, queue bound {args.queue_depth}\n"
    )
    out.write(result.summary.format() + "\n")
    out.write(
        f"  queue peak : {result.max_queue_depth} pending "
        f"(bound {args.queue_depth})\n"
    )
    return 0


def _cmd_loadgen(args, out) -> int:
    if args.workers < 1:
        raise CliError(f"--workers must be >= 1, got {args.workers}")
    if args.max_batch < 1:
        raise CliError(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.scale <= 0:
        raise CliError(f"--scale must be positive, got {args.scale}")
    out.write(
        f"{'scenario':>18s} {'requests':>9s} {'p50 ms':>9s} {'p95 ms':>9s} "
        f"{'p99 ms':>9s} {'req/s':>8s} {'reject':>7s} {'degraded':>9s}\n"
    )

    def _progress(record):
        summary = record["summary"]
        latency = summary["latency_ms"]

        def ms(value):
            return f"{value:9.3f}" if value is not None else f"{'n/a':>9s}"

        out.write(
            f"{record['name']:>18s} {record['requests']:9d} "
            f"{ms(latency['p50'])} {ms(latency['p95'])} {ms(latency['p99'])} "
            f"{summary['throughput_rps']:8.1f} "
            f"{format_percent(summary['reject_rate']):>7s} "
            f"{summary['degraded']:9d}\n"
        )

    if args.jobs < 1:
        raise CliError(f"--jobs must be >= 1, got {args.jobs}")
    document = run_serving_bench(
        smoke=args.smoke,
        seed=args.seed,
        workers=args.workers,
        max_batch=args.max_batch,
        arrival=args.arrival,
        scale=args.scale,
        fast_path=not args.slow_path,
        output=args.output,
        progress=_progress,
        jobs=args.jobs,
        with_perf=not args.no_perf,
    )
    batching = document["batching"]
    overload = next(
        s["summary"] for s in document["scenarios"] if s["name"] == "overload"
    )
    stages = "  ".join(
        f"{stage}={count}" for stage, count in overload["stage_counts"].items()
    )
    out.write(f"overload stage counts: {stages}\n")
    out.write(
        f"dynamic batching (max {batching['max_batch']}): "
        f"{batching['batched_throughput_rps']:.1f} req/s vs "
        f"{batching['batch1_throughput_rps']:.1f} req/s unbatched = "
        f"{batching['speedup']:.2f}x throughput; results in {args.output}\n"
    )
    return 0


def _cmd_chaos(args, out) -> int:
    if args.workers < 1:
        raise CliError(f"--workers must be >= 1, got {args.workers}")
    if args.jobs < 1:
        raise CliError(f"--jobs must be >= 1, got {args.jobs}")
    out.write(
        f"{'policy':>22s} {'fault':>6s} {'done':>5s} {'fail':>5s} {'rej':>5s} "
        f"{'req/s':>8s} {'p99 ms':>9s} {'retry':>6s} {'hedge':>6s} "
        f"{'opens':>6s} {'evict':>6s} {'lost':>5s} {'dup':>4s}\n"
    )

    def _progress(record):
        summary = record["summary"]
        p99 = summary["latency_ms"]["p99"]
        p99_text = f"{p99:9.3f}" if p99 is not None else f"{'n/a':>9s}"
        out.write(
            f"{record['policy']:>22s} {record['fault_rate']:6.2f} "
            f"{summary['completed']:5d} {summary['failed']:5d} "
            f"{summary['rejected']:5d} {summary['goodput_rps']:8.1f} "
            f"{p99_text} {summary['retries']:6d} {summary['hedges']:6d} "
            f"{summary['breaker_opens']:6d} {summary['evictions']:6d} "
            f"{summary['lost']:5d} {summary['duplicates']:4d}\n"
        )

    document = run_chaos_bench(
        smoke=args.smoke,
        root_seed=args.seed,
        workers=args.workers,
        fast_path=not args.slow_path,
        jobs=args.jobs,
        output=args.output,
        with_perf=not args.no_perf,
        progress=_progress,
    )
    verdicts = document["verdicts"]
    dominance = document["dominance"]
    out.write(
        f"conservation: zero_lost={verdicts['zero_lost']} "
        f"zero_duplicates={verdicts['zero_duplicates']}\n"
    )
    out.write(
        f"dominance at fault rate {dominance['fault_rate']}: "
        f"{dominance['full_stack_policy']} "
        f"{dominance['full_stack_goodput_rps']:.1f} req/s vs "
        f"{dominance['baseline_policy']} "
        f"{dominance['baseline_goodput_rps']:.1f} req/s "
        f"({'holds' if verdicts['dominance'] else 'FAILS'}); "
        f"results in {args.output}\n"
    )
    return 0 if all(verdicts.values()) else 1


def _cmd_fleet(args, out) -> int:
    if args.jobs < 1:
        raise CliError(f"--jobs must be >= 1, got {args.jobs}")
    out.write(
        f"{'scenario':>20s} {'offered':>8s} {'done':>5s} {'rej':>5s} "
        f"{'good/s':>8s} {'p95 ms':>9s} {'peak':>5s} {'out':>4s} {'in':>4s} "
        f"{'util':>5s}\n"
    )

    def _progress(record):
        summary = record["summary"]
        p95 = summary["latency_ms"]["p95"]
        p95_text = f"{p95:9.3f}" if p95 is not None else f"{'n/a':>9s}"
        out.write(
            f"{record['name']:>20s} {summary['offered']:8d} "
            f"{summary['completed']:5d} {summary['rejected']:5d} "
            f"{record['goodput_rps']:8.1f} {p95_text} "
            f"{record['peak_servers']:5d} {record['scale_outs']:4d} "
            f"{record['scale_ins']:4d} {record['shard_utilization']:5.2f}\n"
        )

    document = run_fleet_bench(
        smoke=args.smoke,
        root_seed=args.seed,
        fast_path=not args.slow_path,
        jobs=args.jobs,
        output=args.output,
        capacity_source=args.capacity_source,
        with_perf=not args.no_perf,
        progress=_progress,
    )
    feed = document["capacity_feed"]
    out.write(
        f"capacity feed: {feed['server_capacity_rps']:.1f} req/s per server "
        f"from {feed['source']} -> {feed['nominal_servers']} server(s) at "
        f"{feed['nominal_rate_rps']:g} req/s offered\n"
    )
    verdicts = document["verdicts"]
    dominance = document["dominance"]
    speedup = dominance["speedup"]
    speedup_text = f"{speedup:.2f}x" if speedup is not None else "n/a"
    out.write(
        f"goodput dominance: sharded fleet "
        f"{dominance['sharded_goodput_rps']:.1f} req/s vs single chip "
        f"{dominance['baseline_goodput_rps']:.1f} req/s ({speedup_text}, "
        f"{'holds' if verdicts['goodput_dominance'] else 'FAILS'})\n"
    )
    out.write(
        f"autoscale out observed: {verdicts['autoscale_out_observed']}  "
        f"closed loop conserved: {verdicts['closed_loop_conserved']}; "
        f"results in {args.output}\n"
    )
    return 0 if all(verdicts.values()) else 1


def _cmd_dynamic(args, out) -> int:
    if args.jobs < 1:
        raise CliError(f"--jobs must be >= 1, got {args.jobs}")
    out.write(
        f"{'task':>20s} {'detail':>24s} {'best/good':>10s} {'drop':>7s} "
        f"{'verdict':>8s}\n"
    )

    def _progress(record):
        if record["kind"] == "pareto":
            best = record["best"]
            out.write(
                f"{record['model']:>20s} "
                f"{'tau=' + format(best['threshold'], 'g'):>24s} "
                f"{best['cycle_reduction_vs_full']:9.2f}x "
                f"{format_percent(best['mean_estimated_drop']):>7s} "
                f"{'PASS' if record['pareto_win'] else 'miss':>8s}\n"
            )
        elif record["kind"] == "parity":
            models = ", ".join(m["model"] for m in record["models"])
            out.write(
                f"{'static parity':>20s} {models:>24s} {'':>10s} {'':>7s} "
                f"{'PASS' if record['static_parity'] else 'FAIL':>8s}\n"
            )
        else:
            summary = record["summary"]
            done = f"{summary['completed']}/{summary['offered']} done"
            out.write(
                f"{record['name']:>20s} {done:>24s} "
                f"{record['goodput_rps']:9.1f}r "
                f"{format_percent(record['mean_quality_drop']):>7s} "
                f"{'':>8s}\n"
            )

    document = run_dynamic_bench(
        smoke=args.smoke,
        root_seed=args.seed,
        fast_path=not args.slow_path,
        jobs=args.jobs,
        output=args.output,
        with_perf=not args.no_perf,
        progress=_progress,
    )
    best = document["best_tradeoff"]
    out.write(
        f"best tradeoff: {best['model']} at threshold "
        f"{best['threshold']:g} -> {best['cycle_reduction_vs_full']:.2f}x "
        f"cycles at {format_percent(best['mean_estimated_drop'])} estimated "
        f"accuracy drop\n"
    )
    verdicts = document["verdicts"]
    dominance = document["dominance"]
    gain = dominance["gain"]
    gain_text = f"{gain:.2f}x" if gain is not None else "n/a"
    out.write(
        f"overload goodput: quality-aware "
        f"{dominance['quality_goodput_rps']:.1f} req/s vs ladder-only "
        f"{dominance['ladder_goodput_rps']:.1f} req/s ({gain_text}, "
        f"{'holds' if verdicts['goodput_dominance'] else 'FAILS'}) at "
        f"{format_percent(dominance['quality_mean_drop'])} mean estimated "
        f"drop\n"
    )
    out.write(
        f"pareto win: {verdicts['pareto_win']}  "
        f"static parity: {verdicts['static_parity']}  "
        f"threshold monotone: {verdicts['threshold_monotone']}  "
        f"quality bounded: {verdicts['quality_bounded']}; "
        f"results in {args.output}\n"
    )
    return 0 if all(verdicts.values()) else 1


_COMMANDS = {
    "list-models": _cmd_list_models,
    "simulate": _cmd_simulate,
    "stages": _cmd_stages,
    "compare": _cmd_compare,
    "area": _cmd_area,
    "faults": _cmd_faults,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "chaos": _cmd_chaos,
    "fleet": _cmd_fleet,
    "dynamic": _cmd_dynamic,
    "lint": cmd_lint,
}


def main(argv: list[str] | None = None, out=None, err=None) -> int:
    """CLI entry point; returns the process exit code.

    Usage errors -- a :class:`CliError` from a command, or a bad value
    that slipped past argparse (``ValueError``/``KeyError`` from the
    library layer) -- print one ``error: ...`` line on ``err`` and return
    status 2; they never escape as tracebacks.
    """
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except CliError as exc:
        err.write(f"error: {exc}\n")
        return 2
    except (ValueError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        err.write(f"error: {message}\n")
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
