"""Input-adaptive selective execution: early exits, pricing, decisions.

DUET's dual modules switch per *activation*; this package adds the
per-*input* axis (D²NN, arXiv:1701.00299): early-exit model variants
over the zoo (:mod:`repro.dynamic.exits`), seeded per-input exit
decisions (:mod:`repro.dynamic.decision`), exit-aware cycle/energy and
quality pricing (:mod:`repro.dynamic.costmodel`), and a batch executor
that routes each sample to its exit (:mod:`repro.dynamic.executor`).
The serving tier consumes it through
:class:`~repro.serving.quality.QualityPolicy` -- under queue pressure,
requests shed depth (quality) before the ladder sheds precision.
"""

from repro.dynamic.costmodel import (
    EXIT_PRICING,
    ExitCostModel,
    ExitPricing,
    estimated_accuracy_drop,
)
from repro.dynamic.decision import (
    ALWAYS_LATE,
    confidence,
    decide_exit,
    input_difficulty,
)
from repro.dynamic.executor import DynamicBatchExecutor
from repro.dynamic.exits import (
    EXIT_REGISTRY,
    FINAL_EXIT,
    EarlyExitModel,
    ExitPoint,
    early_exit_model,
    early_exit_variants,
    reduced_width_spec,
    truncated_spec,
)

__all__ = [
    "ALWAYS_LATE",
    "EXIT_PRICING",
    "EXIT_REGISTRY",
    "FINAL_EXIT",
    "DynamicBatchExecutor",
    "EarlyExitModel",
    "ExitCostModel",
    "ExitPoint",
    "ExitPricing",
    "confidence",
    "decide_exit",
    "early_exit_model",
    "early_exit_variants",
    "estimated_accuracy_drop",
    "input_difficulty",
    "reduced_width_spec",
    "truncated_spec",
]
