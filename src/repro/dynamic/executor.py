"""Batch execution with per-input early exits.

:class:`DynamicBatchExecutor` extends the serving tier's
:class:`~repro.sim.batching.BatchExecutor` with the per-input axis:
each sample in a batch gets a seeded exit decision
(:func:`~repro.dynamic.decision.decide_exit`) and is simulated on the
truncated spec its exit implies.  Models without a registered early-exit
variant -- and every sample at ``threshold == ALWAYS_LATE`` -- run the
unmodified backbone spec, sharing the base executor's memoization keys,
so the static configuration is bit-identical to a plain
``BatchExecutor`` (reports, service cycles, and cache contents).

:class:`DynamicShardedExecutor` does the same over the fleet tier's
:class:`~repro.sim.sharding.ShardedExecutor`, with one documented
restriction: models carrying a shard plan always serve full depth (a
pipeline/tensor split partitions the *whole* backbone across chips;
re-planning per input would change the placement mid-batch).  Early
exits apply to the single-chip models of the placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamic.costmodel import estimated_accuracy_drop
from repro.dynamic.decision import ALWAYS_LATE, ExitDecision, decide_exit
from repro.dynamic.exits import (
    EXIT_REGISTRY,
    EarlyExitModel,
    early_exit_model,
    truncated_spec,
)
from repro.models.layer_spec import ModelSpec
from repro.sim.sharding import ShardedBatchResult, ShardedExecutor
from repro.sim.batching import BatchExecutor, BatchResult

__all__ = [
    "DynamicBatchExecutor",
    "DynamicBatchResult",
    "DynamicShardedBatchResult",
    "DynamicShardedExecutor",
    "decision_drop",
]


@dataclass
class DynamicBatchResult(BatchResult):
    """A batch result annotated with per-sample exit decisions.

    ``decisions[i]`` pairs with ``reports[i]``; an entry is None when the
    model has no registered early-exit variant (static service).
    """

    decisions: list | None = None


@dataclass
class DynamicShardedBatchResult(ShardedBatchResult):
    """A sharded batch result annotated with per-sample exit decisions."""

    decisions: list | None = None


def decision_drop(model_name: str, decision: ExitDecision | None) -> float:
    """Estimated accuracy drop one sample's decision cost it."""
    if decision is None:
        return 0.0
    return estimated_accuracy_drop(model_name, decision.depth_fraction)


class _ExitAware:
    """Shared exit-decision machinery of the dynamic executors.

    Mixed into :class:`~repro.sim.batching.BatchExecutor` subclasses;
    relies on their ``_resolve`` and adds the variant cache + the seeded
    per-sample decision.
    """

    exit_seed: int

    def _init_exits(self, exit_seed: int) -> None:
        self.exit_seed = exit_seed
        self._exit_models: dict[str, EarlyExitModel | None] = {}

    def exit_model_for(self, model: str | ModelSpec) -> EarlyExitModel | None:
        """The registered early-exit variant, or None for static models."""
        spec = self._resolve(model)
        if spec.name not in self._exit_models:
            self._exit_models[spec.name] = (
                early_exit_model(spec) if spec.name in EXIT_REGISTRY else None
            )
        return self._exit_models[spec.name]

    def decide(
        self, model: str | ModelSpec, workload_seed: int, threshold: float
    ) -> ExitDecision | None:
        """One sample's exit decision (None when the model is static)."""
        variant = self.exit_model_for(model)
        if variant is None:
            return None
        return decide_exit(
            variant, workload_seed, threshold, seed=self.exit_seed
        )

    def _decide_batch(
        self, variant: EarlyExitModel, workload_seeds: list[int], threshold: float
    ) -> tuple[list, list]:
        """Per-sample decisions and the truncated specs they imply."""
        decisions = [
            decide_exit(variant, seed, threshold, seed=self.exit_seed)
            for seed in workload_seeds
        ]
        specs = [
            truncated_spec(variant, decision.exit_name)
            for decision in decisions
        ]
        return decisions, specs


class DynamicBatchExecutor(_ExitAware, BatchExecutor):
    """A :class:`BatchExecutor` that can serve inputs at early exits.

    Args:
        exit_seed: decision-stream seed; together with each sample's
            ``workload_seed`` and the threshold it fully determines the
            chosen exit.
        **kwargs: forwarded to :class:`BatchExecutor` (config,
            energy_model, reduction, sparsity, reliability, service).
    """

    def __init__(self, *, exit_seed: int = 0, **kwargs):
        super().__init__(**kwargs)
        self._init_exits(exit_seed)

    def execute(
        self,
        model: str | ModelSpec,
        workload_seeds: list[int],
        stage: str | None = None,
        threshold: float = ALWAYS_LATE,
    ) -> DynamicBatchResult:
        """Run one same-model batch, routing each sample to its exit."""
        if not workload_seeds:
            raise ValueError("a batch needs at least one request")
        variant = self.exit_model_for(model)
        if variant is None:
            spec = self._resolve(model)
            decisions: list = [None] * len(workload_seeds)
            specs = [spec] * len(workload_seeds)
        else:
            decisions, specs = self._decide_batch(
                variant, workload_seeds, threshold
            )
        reports = [
            self.sample_report(spec, seed, stage)
            for spec, seed in zip(specs, workload_seeds)
        ]
        return DynamicBatchResult(
            reports=reports,
            service_cycles=self.service.batch_service_cycles(reports),
            decisions=decisions,
        )


class DynamicShardedExecutor(_ExitAware, ShardedExecutor):
    """A :class:`~repro.sim.sharding.ShardedExecutor` that serves
    single-chip models at early exits.

    Models with a shard plan always run full depth (their split
    partitions the whole backbone across the shard group); single-chip
    models with a registered exit variant follow the threshold.  At
    ``threshold == ALWAYS_LATE`` pricing is bit-identical to the plain
    sharded executor for every model.

    Args:
        exit_seed: decision-stream seed.
        **kwargs: forwarded to :class:`ShardedExecutor` (plans,
            colocated, hardware config, ...).
    """

    def __init__(self, *, exit_seed: int = 0, **kwargs):
        super().__init__(**kwargs)
        self._init_exits(exit_seed)

    def execute(
        self,
        model,
        workload_seeds,
        stage=None,
        threshold: float = ALWAYS_LATE,
    ) -> ShardedBatchResult:
        """Price one same-model batch, routing each sample to its exit."""
        if not workload_seeds:
            raise ValueError("a batch needs at least one request")
        spec = self._resolve(model)
        plan = self.plan_for(spec.name)
        variant = self.exit_model_for(spec) if plan.kind == "none" else None
        if variant is None:
            return super().execute(spec, workload_seeds, stage=stage)
        decisions, specs = self._decide_batch(
            variant, workload_seeds, threshold
        )
        reports = [
            self.sample_report(sample_spec, seed, stage)
            for sample_spec, seed in zip(specs, workload_seeds)
        ]
        # single-chip pricing, with co-location inflation keyed on the
        # *backbone* name -- a truncated spec competes for the same GLB
        # partition its full model owns
        memory = max(
            self._inflated(spec.name, r.memory_cycles) for r in reports
        )
        compute = sum(r.compute_cycles for r in reports)
        service = self.service.dispatch_overhead_cycles + memory + compute
        return DynamicShardedBatchResult(
            reports=reports,
            service_cycles=service,
            shard_busy_cycles=[memory + compute],
            decisions=decisions,
        )
