"""Seeded per-input exit decisions.

The reproduction has no trained weights, so "confidence at an exit head"
is modelled the same way the rest of the repo models data-dependent
behaviour: a seeded synthetic distribution.  Each input draws a
*difficulty* ``d`` in ``(0, 1]`` from a deterministic stream keyed on
``(seed, workload_seed)``; the confidence at a head whose cumulative
backbone depth fraction is ``f`` is::

    conf(f) = 1 - d * (1 - f)

Easy inputs (small ``d``) are confident at shallow heads; every input is
fully confident at full depth (``f = 1``), and ``conf < 1`` strictly at
every side exit.  An input leaves at the first side exit whose
confidence clears the threshold ``tau``; otherwise it runs the full
backbone.  Consequences the property suite pins:

- The decision is a pure function of ``(seed, workload_seed, tau)``.
- Raising ``tau`` monotonically deepens the chosen exit, per input.
- ``tau = ALWAYS_LATE`` (1.0) can never be met by a side exit, so every
  input takes the full-depth path -- the bit-identical static
  degeneration the acceptance criteria require.

Note: ISSUE 9's satellite wording says "threshold=0 (always-exit-late)",
which contradicts its own monotonicity clause (raising the threshold
deepens exits ⇒ the *maximum* threshold is the always-late end).  We
implement the self-consistent orientation and alias the always-late
sentinel as :data:`ALWAYS_LATE`; see docs/dynamic.md for the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamic.exits import FINAL_EXIT, EarlyExitModel

__all__ = [
    "ALWAYS_LATE",
    "ExitDecision",
    "confidence",
    "decide_exit",
    "input_difficulty",
]

#: Threshold at which no side exit can fire: ``conf < 1`` strictly at
#: every side head, so every input runs the full static backbone.
ALWAYS_LATE = 1.0


@dataclass(frozen=True)
class ExitDecision:
    """Where one input left the network, and why.

    Attributes:
        exit_name: chosen exit (``"full"`` for the static path).
        exit_index: position in ``model.exit_names`` (final exit last).
        depth_fraction: backbone-MAC fraction executed (1.0 when full).
        confidence: confidence at the chosen exit head (1.0 when full).
        difficulty: the input's seeded difficulty draw in (0, 1].
    """

    exit_name: str
    exit_index: int
    depth_fraction: float
    confidence: float
    difficulty: float

    @property
    def early(self) -> bool:
        """True when the input left at a side exit before full depth."""
        return self.exit_name != FINAL_EXIT


def input_difficulty(workload_seed: int, seed: int = 0) -> float:
    """The input's difficulty draw in ``(0, 1]``.

    Deterministic given ``(seed, workload_seed)``: the stream descends
    from ``SeedSequence([seed, workload_seed])``, mirroring how workload
    seeds key sparsity elsewhere in the repo.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, workload_seed]))
    # random() is in [0, 1); flip it so difficulty is in (0, 1] and a
    # zero-probability conf==1 tie at side exits cannot occur.
    return 1.0 - float(rng.random())


def confidence(difficulty: float, depth_fraction: float) -> float:
    """Modelled confidence at a head ``depth_fraction`` deep."""
    return 1.0 - difficulty * (1.0 - depth_fraction)


def decide_exit(
    model: EarlyExitModel,
    workload_seed: int,
    threshold: float,
    seed: int = 0,
) -> ExitDecision:
    """Pick the exit one input takes: the first side head whose
    confidence clears ``threshold``, else the full-depth path.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    difficulty = input_difficulty(workload_seed, seed=seed)
    for index, point in enumerate(model.exits):
        fraction = model.depth_fraction(point.name)
        conf = confidence(difficulty, fraction)
        if conf >= threshold:
            return ExitDecision(
                exit_name=point.name,
                exit_index=index,
                depth_fraction=fraction,
                confidence=conf,
                difficulty=difficulty,
            )
    return ExitDecision(
        exit_name=FINAL_EXIT,
        exit_index=len(model.exits),
        depth_fraction=1.0,
        confidence=1.0,
        difficulty=difficulty,
    )
