"""Early-exit model variants: side-output heads over the zoo's backbones.

DUET switches per *activation*; this module adds the per-*input* axis of
D²NN (arXiv:1701.00299) and epsilon-ResNet-style side outputs: an
:class:`EarlyExitModel` wraps one zoo backbone with confidence-thresholded
exit heads at chosen depths.  An input that is "easy" (confident at a
shallow head) leaves the network there and skips every deeper layer --
including the memory-bound FC classifier stack, which is where most of a
CNN's DRAM traffic lives.

Two selective-execution modes are modelled:

- **Early exit** (:func:`truncated_spec`): run the backbone up to the
  exit's attach layer, then a small global-pool + linear head.  The
  *final* exit is the unmodified backbone: :func:`truncated_spec` returns
  the original :class:`~repro.models.layer_spec.ModelSpec` object, so the
  full-depth path prices bit-identically to today's static costs.
- **Selective subpath** (:func:`reduced_width_spec`): keep the full depth
  but shrink every hidden layer's width by a fraction -- the
  reduced-width alternative for inputs that need depth but not capacity.

Only shapes matter (as everywhere in this reproduction), so exit heads
are :class:`~repro.models.layer_spec.FCSpec` shapes, not trained weights.
The registered variants live in :data:`EXIT_REGISTRY`; duetlint DYN001
keeps every registered backbone priced in
:mod:`repro.dynamic.costmodel` and covered by the parity suite
``tests/dynamic/test_parity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.layer_spec import ConvSpec, FCSpec, ModelSpec, RNNSpec
from repro.models.registry import get_model_spec

__all__ = [
    "EXIT_REGISTRY",
    "FINAL_EXIT",
    "ExitPoint",
    "EarlyExitModel",
    "early_exit_model",
    "early_exit_variants",
    "reduced_width_spec",
    "truncated_spec",
]

#: Name of the implicit final exit (the unmodified full-depth backbone).
FINAL_EXIT = "full"

#: Number of classifier outputs every exit head projects to (ImageNet).
_HEAD_CLASSES = 1000


@dataclass(frozen=True)
class ExitPoint:
    """One side-output head hanging off a backbone layer.

    Attributes:
        name: exit label, unique within the model (e.g. ``"ee1"``).
        after_layer: name of the backbone layer whose output feeds the
            head (the exit runs every backbone layer up to and including
            it).
    """

    name: str
    after_layer: str

    def __post_init__(self):
        if not self.name:
            raise ValueError("ExitPoint.name must be non-empty")
        if self.name == FINAL_EXIT:
            raise ValueError(
                f"ExitPoint.name {FINAL_EXIT!r} is reserved for the "
                "implicit full-depth exit"
            )
        if not self.after_layer:
            raise ValueError("ExitPoint.after_layer must be non-empty")


@dataclass(frozen=True)
class EarlyExitModel:
    """A zoo backbone plus its ordered side-output exits.

    Attributes:
        spec: the unmodified backbone :class:`ModelSpec`.
        exits: side exits in increasing depth order (the implicit final
            exit -- the full backbone -- is not listed; see
            :attr:`exit_names`).
    """

    spec: ModelSpec
    exits: tuple = field(default_factory=tuple)

    def __post_init__(self):
        if not self.exits:
            raise ValueError(
                f"EarlyExitModel for {self.spec.name!r} needs at least one "
                "side exit (a model without exits is just the static spec)"
            )
        names = [e.name for e in self.exits]
        if len(set(names)) != len(names):
            raise ValueError(f"exit names must be distinct, got {names}")
        indices = [self.layer_index(e.after_layer) for e in self.exits]
        if indices != sorted(indices):
            raise ValueError(
                f"exits of {self.spec.name!r} must be in increasing depth "
                f"order, got attach indices {indices}"
            )
        if indices and indices[-1] >= len(self.spec.layers) - 1:
            raise ValueError(
                f"the deepest side exit of {self.spec.name!r} attaches at "
                f"layer index {indices[-1]}; it must leave at least the "
                "final backbone layer to the full-depth path"
            )

    @property
    def name(self) -> str:
        """The backbone model name."""
        return self.spec.name

    @property
    def exit_names(self) -> tuple:
        """All exits in depth order, the final full-depth exit last."""
        return tuple(e.name for e in self.exits) + (FINAL_EXIT,)

    def layer_index(self, layer_name: str) -> int:
        """Index of ``layer_name`` in the backbone's layer list."""
        for index, layer in enumerate(self.spec.layers):
            if layer.name == layer_name:
                return index
        raise KeyError(
            f"model {self.spec.name!r} has no layer {layer_name!r}"
        )

    def exit_point(self, exit_name: str) -> ExitPoint | None:
        """The side :class:`ExitPoint` named, or None for the final exit."""
        if exit_name == FINAL_EXIT:
            return None
        for point in self.exits:
            if point.name == exit_name:
                return point
        raise KeyError(
            f"model {self.spec.name!r} has no exit {exit_name!r} "
            f"(have {list(self.exit_names)})"
        )

    def depth_fraction(self, exit_name: str) -> float:
        """Backbone-MAC fraction executed when leaving at ``exit_name``.

        The head's own (tiny) MACs are excluded: the fraction measures
        how much of the *backbone* an input traversed, which is the
        depth axis the confidence and quality models are defined on.
        The final exit is exactly 1.0.
        """
        point = self.exit_point(exit_name)
        if point is None:
            return 1.0
        index = self.layer_index(point.after_layer)
        prefix = sum(layer.macs for layer in self.spec.layers[: index + 1])
        return prefix / self.spec.total_macs


def _head_spec(point: ExitPoint, attach) -> FCSpec:
    """The exit head's shape: global-average-pool then linear.

    Pooling is free in the cost model (it is a tiny reduction next to
    any conv layer), so the head is one FC from the pooled channel
    vector -- or the raw feature vector for an FC attach layer -- to the
    classifier width.
    """
    if isinstance(attach, ConvSpec):
        in_features = attach.out_channels
    elif isinstance(attach, FCSpec):
        in_features = attach.out_features
    elif isinstance(attach, RNNSpec):
        in_features = attach.hidden_size
    else:  # pragma: no cover - the IR has exactly three layer kinds
        raise TypeError(f"unsupported attach layer {attach!r}")
    return FCSpec(f"{point.name}_head", in_features, _HEAD_CLASSES)


def truncated_spec(model: EarlyExitModel, exit_name: str) -> ModelSpec:
    """The :class:`ModelSpec` an input leaving at ``exit_name`` executes.

    For the final exit this returns the *original* backbone spec object
    -- same name, same layers -- so its cost model reports are
    bit-identical to the static model's (the degeneration contract the
    parity suite pins).  For a side exit it is the backbone prefix up to
    the attach layer plus the exit head.
    """
    point = model.exit_point(exit_name)
    if point is None:
        return model.spec
    index = model.layer_index(point.after_layer)
    attach = model.spec.layers[index]
    layers = list(model.spec.layers[: index + 1])
    layers.append(_head_spec(point, attach))
    return ModelSpec(
        f"{model.spec.name}@{point.name}", model.spec.domain, layers
    )


def reduced_width_spec(spec: ModelSpec, width: float) -> ModelSpec:
    """The selective-subpath variant: every hidden width scaled by
    ``width``.

    The network keeps its depth but sheds capacity: conv channels, FC
    features and RNN hidden sizes are scaled (floor 1 element), while
    the model's external interface -- the first layer's input geometry
    and the last layer's output width -- is preserved.  ``width=1.0``
    returns the original spec object unchanged.
    """
    if not 0.0 < width <= 1.0:
        raise ValueError(f"width must be in (0, 1], got {width}")
    if width >= 1.0:  # validated to (0, 1], so this is exactly 1.0
        return spec
    scale = lambda n: max(1, round(n * width))  # noqa: E731
    last = len(spec.layers) - 1
    layers = []
    for index, layer in enumerate(spec.layers):
        if isinstance(layer, ConvSpec):
            layers.append(
                ConvSpec(
                    layer.name,
                    layer.in_channels if index == 0 else scale(layer.in_channels),
                    layer.out_channels if index == last else scale(layer.out_channels),
                    kernel=layer.kernel,
                    stride=layer.stride,
                    padding=layer.padding,
                    in_h=layer.in_h,
                    in_w=layer.in_w,
                )
            )
        elif isinstance(layer, FCSpec):
            layers.append(
                FCSpec(
                    layer.name,
                    layer.in_features if index == 0 else scale(layer.in_features),
                    layer.out_features if index == last else scale(layer.out_features),
                )
            )
        elif isinstance(layer, RNNSpec):
            layers.append(
                RNNSpec(
                    layer.name,
                    layer.kind,
                    layer.input_size if index == 0 else scale(layer.input_size),
                    scale(layer.hidden_size),
                    layer.seq_len,
                )
            )
        else:  # pragma: no cover - the IR has exactly three layer kinds
            raise TypeError(f"unsupported layer {layer!r}")
    return ModelSpec(f"{spec.name}~w{width:g}", spec.domain, layers)


#: Registered early-exit variants: backbone name -> side-exit placements.
#: duetlint DYN001 requires every key here to carry a priced entry in
#: ``repro.dynamic.costmodel.EXIT_PRICING`` and a reference in the
#: parity suite.  CNN backbones only: the RNN language models have no
#: classifier stack to short-circuit, so per-input depth selection buys
#: them nothing (their width axis is covered by reduced_width_spec).
EXIT_REGISTRY: dict = {
    "alexnet": (
        ExitPoint("ee1", after_layer="conv3"),
        ExitPoint("ee2", after_layer="conv5"),
    ),
    "resnet18": (
        ExitPoint("ee1", after_layer="layer2_1_conv2"),
        ExitPoint("ee2", after_layer="layer3_1_conv2"),
    ),
    "vgg16": (
        ExitPoint("ee1", after_layer="conv3_3"),
        ExitPoint("ee2", after_layer="conv4_3"),
    ),
}


def early_exit_variants() -> tuple:
    """Backbone names with a registered early-exit variant, sorted."""
    return tuple(sorted(EXIT_REGISTRY))


def early_exit_model(model: str | ModelSpec) -> EarlyExitModel:
    """The registered :class:`EarlyExitModel` for a zoo backbone.

    Raises:
        KeyError: when the backbone has no registered exit variant.
    """
    spec = model if isinstance(model, ModelSpec) else get_model_spec(model)
    if spec.name not in EXIT_REGISTRY:
        raise KeyError(
            f"model {spec.name!r} has no registered early-exit variant "
            f"(have {list(early_exit_variants())})"
        )
    return EarlyExitModel(spec=spec, exits=tuple(EXIT_REGISTRY[spec.name]))
