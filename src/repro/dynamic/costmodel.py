"""Exit-aware cost and quality pricing.

Every exit point of a registered early-exit variant gets two prices:

- **Cycles/energy** -- the truncated spec (backbone prefix + head) is
  run through the existing Executor/Speculator pipeline models via a
  :class:`~repro.sim.batching.BatchExecutor`, so exit costs use the
  exact same simulation the serving tier bills with.  The final exit's
  truncated spec *is* the original backbone spec object, so full-depth
  costs degenerate bit-identically to the static model's (pinned by
  ``tests/dynamic/test_parity.py``).
- **Estimated accuracy drop** -- a monotone quality model per backbone
  (:class:`ExitPricing`): leaving after a backbone-MAC fraction ``f``
  costs ``max_drop * (1 - f) ** exponent`` of accuracy.  Full depth is
  exactly 0.0 drop.  The constants are calibrated against the early-exit
  literature's shape (BranchyNet/D²NN: shallow exits lose a few percent,
  the curve flattens near full depth), not trained heads.

duetlint DYN001 enforces that every backbone registered in
``repro.dynamic.exits.EXIT_REGISTRY`` has a priced entry in
:data:`EXIT_PRICING` here and is exercised by the parity suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamic.exits import (
    EarlyExitModel,
    early_exit_model,
    truncated_spec,
)
from repro.models.layer_spec import ModelSpec

__all__ = [
    "EXIT_PRICING",
    "ExitCostModel",
    "ExitPricing",
    "estimated_accuracy_drop",
]


@dataclass(frozen=True)
class ExitPricing:
    """Quality price of leaving a backbone early.

    Attributes:
        max_drop: accuracy lost by exiting at depth fraction 0 (the
            asymptotic worst case; no registered exit sits there).
        exponent: curvature -- larger means the penalty concentrates in
            the shallowest exits and full-ish depth is nearly free.
    """

    max_drop: float
    exponent: float

    def __post_init__(self):
        if not 0.0 <= self.max_drop <= 1.0:
            raise ValueError(f"max_drop must be in [0, 1], got {self.max_drop}")
        if self.exponent <= 0.0:
            raise ValueError(f"exponent must be > 0, got {self.exponent}")

    def drop(self, depth_fraction: float) -> float:
        """Estimated accuracy drop for exiting at ``depth_fraction``."""
        if not 0.0 <= depth_fraction <= 1.0:
            raise ValueError(
                f"depth_fraction must be in [0, 1], got {depth_fraction}"
            )
        return self.max_drop * (1.0 - depth_fraction) ** self.exponent


#: Per-backbone quality model -- one priced entry per EXIT_REGISTRY key
#: (duetlint DYN001 keeps the two dicts in lock-step).
EXIT_PRICING: dict = {
    "alexnet": ExitPricing(max_drop=0.05, exponent=1.5),
    "resnet18": ExitPricing(max_drop=0.05, exponent=1.5),
    "vgg16": ExitPricing(max_drop=0.05, exponent=1.5),
}


def estimated_accuracy_drop(model_name: str, depth_fraction: float) -> float:
    """Quality price of serving ``model_name`` at ``depth_fraction``.

    Raises:
        KeyError: when the backbone has no priced quality model.
    """
    if model_name not in EXIT_PRICING:
        raise KeyError(
            f"model {model_name!r} has no exit pricing entry "
            f"(have {sorted(EXIT_PRICING)})"
        )
    return EXIT_PRICING[model_name].drop(depth_fraction)


class ExitCostModel:
    """Prices every exit of an early-exit variant on the simulator.

    Composes a :class:`~repro.sim.batching.BatchExecutor` rather than
    re-deriving accelerator construction: the executor owns the
    config/sparsity/memoization conventions, so exit prices are
    bit-compatible with what the serving tier charges for the same
    (spec, stage, workload_seed) -- including the full-depth exit, which
    shares the original spec object and therefore the original memo key.

    Args:
        executor: the pricing executor; defaults to a fresh
            ``BatchExecutor()`` (default hardware, fast path).
    """

    def __init__(self, executor=None):
        if executor is None:
            from repro.sim.batching import BatchExecutor

            executor = BatchExecutor()
        self.executor = executor

    def exit_report(
        self,
        model: EarlyExitModel,
        exit_name: str,
        workload_seed: int,
        stage: str | None = None,
    ):
        """The :class:`~repro.sim.report.ModelReport` of one exit's path."""
        spec = truncated_spec(model, exit_name)
        return self.executor.sample_report(spec, workload_seed, stage)

    def full_report(
        self,
        model: EarlyExitModel,
        workload_seed: int,
        stage: str | None = None,
    ):
        """The static full-depth report (the degeneration baseline)."""
        return self.executor.sample_report(model.spec, workload_seed, stage)

    def exit_table(
        self,
        model: str | ModelSpec | EarlyExitModel,
        workload_seed: int,
        stage: str | None = None,
    ) -> list:
        """Price every exit of ``model``: one row per exit, full last.

        Each row carries the exit's cycle/energy cost, its cycle
        reduction over full depth, and its estimated accuracy drop --
        the raw material of the Pareto sweep.
        """
        if not isinstance(model, EarlyExitModel):
            model = early_exit_model(model)
        full = self.full_report(model, workload_seed, stage)
        rows = []
        for exit_name in model.exit_names:
            report = self.exit_report(model, exit_name, workload_seed, stage)
            fraction = model.depth_fraction(exit_name)
            rows.append(
                {
                    "exit": exit_name,
                    "depth_fraction": fraction,
                    "total_cycles": report.total_cycles,
                    "compute_cycles": report.compute_cycles,
                    "memory_cycles": report.memory_cycles,
                    "energy_pj": report.energy.total,
                    "cycle_reduction_vs_full": (
                        full.total_cycles / report.total_cycles
                    ),
                    "estimated_accuracy_drop": estimated_accuracy_drop(
                        model.name, fraction
                    ),
                }
            )
        return rows
