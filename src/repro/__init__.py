"""DUET reproduction: dual-module DNN processing and accelerator simulation.

Reproduction of Liu Liu et al., *DUET: Boosting Deep Neural Network
Efficiency on Dual-Module Architecture* (MICRO 2020), as a pure-Python
library.  Subpackages:

- :mod:`repro.core` -- the paper's contribution: dual-module processing
  (ternary random projection, QDR approximate modules, distillation,
  threshold-based dynamic switching).
- :mod:`repro.nn` -- numpy NN training substrate (no external DL
  framework required).
- :mod:`repro.quant` -- fixed-point and quantization substrate.
- :mod:`repro.models` -- shape-exact model zoo (AlexNet, ResNet, VGG,
  LSTM/GRU LMs, GNMT) plus trainable proxies.
- :mod:`repro.workloads` -- turning models into architecture workloads.
- :mod:`repro.sim` -- the DUET accelerator simulator (Executor, Speculator,
  GLB, NoC, DRAM, adaptive mapping, pipelines, energy/area models).
- :mod:`repro.baselines` -- Eyeriss / Cnvlutin / SnaPEA / Predict /
  single-module comparison architectures.

See DESIGN.md for the system inventory and per-experiment index, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

from repro import baselines, core, experiments, models, nn, quant, sim, workloads

__all__ = [
    "core",
    "nn",
    "quant",
    "models",
    "workloads",
    "sim",
    "baselines",
    "experiments",
    "__version__",
]
