"""Extracting measured workloads from dual-module proxy runs.

Bridges the algorithm level and the architecture level: run a
:class:`~repro.models.dualize.DualizedCNN` on real (synthetic-dataset)
inputs, capture the actual switching maps it produced, and wrap them as
:class:`~repro.workloads.sparsity.CnnLayerWorkload` objects the simulator
accepts.  This validates the synthetic :class:`SparsityModel` against maps
produced by the real algorithm and enables true end-to-end (algorithm ->
architecture) studies at proxy scale.
"""

from __future__ import annotations

import numpy as np

from repro.core.switching import imap_from_activations
from repro.models.dualize import DualizedCNN
from repro.models.layer_spec import ConvSpec
from repro.nn.layers import ReLU
from repro.workloads.sparsity import CnnLayerWorkload

__all__ = ["workload_from_maps", "trace_cnn_workloads"]


def workload_from_maps(
    spec: ConvSpec, omap: np.ndarray, imap: np.ndarray
) -> CnnLayerWorkload:
    """Wrap measured maps (single image) as a simulator workload.

    Args:
        spec: the layer shape the maps belong to.
        omap: measured switching map ``(C_out, H', W')``.
        imap: measured input sparsity map ``(C_in, H, W)``.
    """
    return CnnLayerWorkload(
        spec, np.asarray(omap, dtype=np.uint8), np.asarray(imap, dtype=np.uint8)
    )


def _spec_from_conv(name: str, conv, in_h: int, in_w: int) -> ConvSpec:
    """Build a ConvSpec from a live ``repro.nn.layers.Conv2d``."""
    return ConvSpec(
        name,
        conv.in_channels,
        conv.out_channels,
        kernel=conv.kernel_size[0],
        stride=conv.stride,
        padding=conv.padding,
        in_h=in_h,
        in_w=in_w,
    )


def trace_cnn_workloads(
    dual: DualizedCNN, image: np.ndarray
) -> list[CnnLayerWorkload]:
    """Run a dualized CNN on one image and capture per-layer workloads.

    Args:
        dual: a built (distilled + threshold-tuned) :class:`DualizedCNN`.
        image: one image of shape ``(C, H, W)`` (a batch axis is added).

    Returns:
        One :class:`CnnLayerWorkload` per dual conv layer, in order, with
        the OMap the switching rule actually produced and the IMap equal to
        the true input sparsity seen by that layer.
    """
    x = np.asarray(image, dtype=np.float64)[None]
    workloads: list[CnnLayerWorkload] = []
    conv_counter = 0
    for index, layer in enumerate(dual.model.features):
        slot = dual._slot_by_index.get(index)
        if slot is not None:
            conv = slot.dual.accurate
            spec = _spec_from_conv(
                f"conv{conv_counter + 1}", conv, x.shape[2], x.shape[3]
            )
            imap = imap_from_activations(x[0])
            out, report = slot.dual.forward(x)
            omap = report.switching_map[0]
            workloads.append(workload_from_maps(spec, omap, imap))
            x = out
            conv_counter += 1
        elif isinstance(layer, ReLU):
            continue  # fused into the dual conv
        else:
            x = layer(x)
    return workloads
