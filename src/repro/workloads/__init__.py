"""Architecture workloads: models + sparsity -> per-layer simulator inputs.

The cycle-level simulator needs, per layer, the switching maps (OMap) and
input sparsity maps (IMap) that drive computation skipping.  Two sources
are supported:

- :mod:`repro.workloads.sparsity` -- calibrated synthetic map generators
  for the full-size model shapes (ImageNet-scale CNNs, 1024-wide RNNs),
  with channel-level workload variance that reproduces the imbalance
  phenomena of paper Section IV-A.
- :mod:`repro.workloads.traces` -- extraction of *measured* maps from
  dual-module proxy runs (:mod:`repro.models.dualize`), used to validate
  the synthetic generators and to drive small-scale end-to-end runs.
"""

from repro.workloads.sparsity import (
    CnnLayerWorkload,
    FcLayerWorkload,
    RnnLayerWorkload,
    SparsityModel,
    cnn_workloads,
    rnn_workloads,
)
from repro.workloads.traces import (
    trace_cnn_workloads,
    workload_from_maps,
)

__all__ = [
    "SparsityModel",
    "CnnLayerWorkload",
    "FcLayerWorkload",
    "RnnLayerWorkload",
    "cnn_workloads",
    "rnn_workloads",
    "trace_cnn_workloads",
    "workload_from_maps",
]
