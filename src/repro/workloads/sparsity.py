"""Calibrated synthetic switching/sparsity maps for full-size model shapes.

Running the dual-module *algorithm* on ImageNet-scale networks is neither
possible offline (no pre-trained weights) nor necessary: the architecture
results depend on the *statistics* of the switching maps -- overall
sensitive fraction, and how unevenly sensitive outputs distribute across
output channels (the source of PE imbalance, Section IV-A).

This module samples maps from a two-level model:

1. per output channel ``c``, a sensitive rate ``p_c ~ Beta(mean, conc)``
   (low concentration = strong channel-to-channel variance = imbalance);
2. per output position within the channel, ``Bernoulli(p_c)``.

The same model generates RNN gate maps (saturation-driven, no channel
structure -- the paper's RNN dataflow has no imbalance by construction).

Defaults are calibrated against the paper's reported operating points
(e.g. AlexNet CONV5 at 65.5% computation sparsity under OS) and validated
against measured proxy-model maps in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.layer_spec import ConvSpec, FCSpec, ModelSpec, RNNSpec
from repro.nn.functional import im2col

__all__ = [
    "SparsityModel",
    "CnnLayerWorkload",
    "FcLayerWorkload",
    "RnnLayerWorkload",
    "cnn_workloads",
    "rnn_workloads",
]


@dataclass
class CnnLayerWorkload:
    """Simulator input for one CONV layer (one image).

    Besides holding the maps, this class derives the per-channel cost
    arrays the Executor cycle model consumes.  The PE-row dataflow
    (paper Fig. 7a) maps one output channel per row; within the row, the
    ``cols`` PEs split each receptive field (the reduction dimension) and
    accumulate psums horizontally, so a position's latency is the *maximum*
    nonzero count over the per-PE slices -- the within-row imbalance the
    paper attributes to input sparsity (Section IV-A).

    Attributes:
        spec: the layer shape.
        omap: switching map of shape ``(C_out, H', W')`` (1 = sensitive).
        imap: input sparsity map of shape ``(C_in, H, W)`` (1 = nonzero).
    """

    spec: ConvSpec
    omap: np.ndarray
    imap: np.ndarray
    _imap_cols: np.ndarray | None = field(default=None, repr=False)
    _slice_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        expected_o = (self.spec.out_channels, self.spec.out_h, self.spec.out_w)
        if self.omap.shape != expected_o:
            raise ValueError(f"omap shape {self.omap.shape} != {expected_o}")
        expected_i = (self.spec.in_channels, self.spec.in_h, self.spec.in_w)
        if self.imap.shape != expected_i:
            raise ValueError(f"imap shape {self.imap.shape} != {expected_i}")

    @property
    def sensitive_fraction(self) -> float:
        """Fraction of outputs the Executor must compute."""
        return float(self.omap.mean())

    @property
    def input_density(self) -> float:
        """Fraction of nonzero input activations."""
        return float(self.imap.mean())

    def _receptive_columns(self) -> np.ndarray:
        """im2col of the IMap: ``(positions, receptive_field)`` of 0/1."""
        if self._imap_cols is None:
            self._imap_cols = im2col(
                self.imap[None].astype(np.float32),
                (self.spec.kernel, self.spec.kernel),
                self.spec.stride,
                self.spec.padding,
            )
        return self._imap_cols

    def position_costs(self) -> np.ndarray:
        """Nonzero input count per receptive field, shape ``(H', W')``.

        These are the MACs one sensitive output at that position costs
        under input switching (ignoring intra-row imbalance).
        """
        cols = self._receptive_columns()
        return cols.sum(axis=1).reshape(self.spec.out_h, self.spec.out_w)

    def position_cycles(self, cols_per_row: int, use_imap: bool) -> np.ndarray:
        """Synchronized per-position cycles for one PE row, shape ``(P,)``.

        The receptive field is split into ``cols_per_row`` contiguous
        slices (one per PE); psums accumulate horizontally each cycle, so
        the position completes when the busiest PE finishes.  Without
        input switching every slice is dense and the cost is uniform.
        """
        receptive = self.spec.receptive_field
        dense_cycles = -(-receptive // cols_per_row)  # ceil
        positions = self.spec.out_h * self.spec.out_w
        if not use_imap:
            return np.full(positions, dense_cycles, dtype=np.int64)
        key = ("slice", cols_per_row)
        if key not in self._slice_cache:
            cols = self._receptive_columns()
            pad = dense_cycles * cols_per_row - receptive
            if pad:
                cols = np.pad(cols, ((0, 0), (0, pad)))
            slices = cols.reshape(positions, cols_per_row, dense_cycles)
            self._slice_cache[key] = (
                slices.sum(axis=2).max(axis=1).astype(np.int64)
            )
        return self._slice_cache[key]

    def channel_cycles(
        self, cols_per_row: int, use_output_switching: bool, use_imap: bool
    ) -> np.ndarray:
        """Row cycles per output channel, shape ``(C_out,)``.

        A channel's row spends :meth:`position_cycles` on every position it
        computes: all of them when output switching is off, only sensitive
        ones otherwise.
        """
        cycles = self.position_cycles(cols_per_row, use_imap)
        if not use_output_switching:
            total = int(cycles.sum())
            return np.full(self.spec.out_channels, total, dtype=np.int64)
        flat_omap = self.omap.reshape(self.spec.out_channels, -1)
        return flat_omap.astype(np.int64) @ cycles

    def channel_tile_cycles(
        self,
        cols_per_row: int,
        use_output_switching: bool,
        use_imap: bool,
        tile_positions: int,
    ) -> np.ndarray:
        """Row cycles per (channel, spatial tile), shape ``(C_out, S)``.

        The Executor advances in steps of ``tile_positions`` output
        positions (paper Fig. 7: each step a PE line produces a small
        output tile), and PE rows synchronise at step boundaries.  These
        per-tile cycles feed the step-granular latency model; their
        within-tile variance is what makes fine-grained steps lose
        utilisation under irregular sparsity.
        """
        if tile_positions <= 0:
            raise ValueError(f"tile_positions must be positive, got {tile_positions}")
        cycles = self.position_cycles(cols_per_row, use_imap)
        positions = cycles.shape[0]
        num_tiles = -(-positions // tile_positions)
        pad = num_tiles * tile_positions - positions
        if use_output_switching:
            flat_omap = self.omap.reshape(self.spec.out_channels, -1)
            per_pos = flat_omap.astype(np.int64) * cycles[None, :]
        else:
            per_pos = np.broadcast_to(
                cycles[None, :], (self.spec.out_channels, positions)
            ).copy()
        if pad:
            per_pos = np.pad(per_pos, ((0, 0), (0, pad)))
        return per_pos.reshape(self.spec.out_channels, num_tiles, tile_positions).sum(
            axis=2
        )

    # -- vectorized fast-path kernels ---------------------------------------
    #
    # The methods below compute exactly the same integers as their
    # reference counterparts (``channel_tile_cycles``,
    # ``channel_tile_switch_counts``, ``int(channel_macs(...).sum())``) but
    # avoid materializing the (C_out, positions) int64 intermediate: the
    # OMap stays uint8 and the per-tile aggregation runs as one batched
    # einsum contraction over the tile axis.  Results are memoized on the
    # workload (the maps are immutable inputs to a simulation run), so a
    # DUET-vs-BASE sweep or a repeated benchmark pays for each kernel once.
    # All arithmetic is integer, hence bit-identical to the reference.

    def _padded_tiles(self, tile_positions: int) -> np.ndarray:
        """OMap as uint8 tiles ``(C_out, S, tile_positions)`` (zero-padded)."""
        key = ("omap_tiles", tile_positions)
        if key not in self._slice_cache:
            flat = self.omap.reshape(self.spec.out_channels, -1)
            if flat.dtype != np.uint8:
                flat = flat.astype(np.uint8)
            positions = flat.shape[1]
            num_tiles = -(-positions // tile_positions)
            pad = num_tiles * tile_positions - positions
            if pad:
                flat = np.pad(flat, ((0, 0), (0, pad)))
            self._slice_cache[key] = flat.reshape(
                self.spec.out_channels, num_tiles, tile_positions
            )
        return self._slice_cache[key]

    @property
    def sensitive_total(self) -> int:
        """Total sensitive outputs, ``int(omap.sum())`` (memoized)."""
        key = ("sensitive_total",)
        if key not in self._slice_cache:
            self._slice_cache[key] = int(self.omap.sum(dtype=np.int64))
        return self._slice_cache[key]

    def channel_tile_cycles_fast(
        self,
        cols_per_row: int,
        use_output_switching: bool,
        use_imap: bool,
        tile_positions: int,
    ) -> np.ndarray:
        """Batched equivalent of :meth:`channel_tile_cycles` (bit-identical)."""
        if tile_positions <= 0:
            raise ValueError(f"tile_positions must be positive, got {tile_positions}")
        key = ("tiles_fast", cols_per_row, use_output_switching, use_imap, tile_positions)
        if key in self._slice_cache:
            return self._slice_cache[key]
        cycles = self.position_cycles(cols_per_row, use_imap)
        positions = cycles.shape[0]
        num_tiles = -(-positions // tile_positions)
        pad = num_tiles * tile_positions - positions
        padded_cycles = np.pad(cycles, (0, pad)) if pad else cycles
        tiled_cycles = padded_cycles.reshape(num_tiles, tile_positions)
        if not use_output_switching:
            tile_totals = tiled_cycles.sum(axis=1)
            result = np.broadcast_to(
                tile_totals[None, :], (self.spec.out_channels, num_tiles)
            )
        elif not use_imap:
            # uniform per-position cost: tile cost = sensitive count x cost
            dense_cycles = int(cycles[0]) if positions else 0
            counts = np.einsum(
                "cst->cs", self._padded_tiles(tile_positions), dtype=np.int64
            )
            result = counts * dense_cycles
        else:
            result = np.einsum(
                "cst,st->cs", self._padded_tiles(tile_positions), tiled_cycles
            )
        self._slice_cache[key] = result
        return result

    def channel_tile_switch_counts_fast(self, tile_positions: int) -> np.ndarray:
        """Batched equivalent of :meth:`channel_tile_switch_counts`."""
        if tile_positions <= 0:
            raise ValueError(f"tile_positions must be positive, got {tile_positions}")
        key = ("tile_counts_fast", tile_positions)
        if key not in self._slice_cache:
            self._slice_cache[key] = np.einsum(
                "cst->cs", self._padded_tiles(tile_positions), dtype=np.int64
            )
        return self._slice_cache[key]

    def executed_macs_total(self, use_output_switching: bool, use_imap: bool) -> int:
        """Integer-exact total of ``channel_macs(...)`` (memoized).

        Equals ``int(channel_macs(use_output_switching, use_imap).sum())``:
        every value involved is an integer below 2**53, so the reference's
        float64 accumulation is exact and the integer computation here
        matches it bit for bit.
        """
        key = ("executed_total", use_output_switching, use_imap)
        if key in self._slice_cache:
            return self._slice_cache[key]
        positions = self.spec.out_h * self.spec.out_w
        if use_imap:
            costs = self.position_costs().reshape(-1).astype(np.int64)
            if use_output_switching:
                per_position = self.omap.reshape(
                    self.spec.out_channels, -1
                ).sum(axis=0, dtype=np.int64)
                total = int(per_position @ costs)
            else:
                total = self.spec.out_channels * int(costs.sum())
        else:
            sensitive = (
                self.sensitive_total
                if use_output_switching
                else self.spec.out_channels * positions
            )
            total = sensitive * self.spec.receptive_field
        self._slice_cache[key] = total
        return total

    def channel_macs(self, use_output_switching: bool, use_imap: bool) -> np.ndarray:
        """Executed MACs per output channel, shape ``(C_out,)``."""
        if use_imap:
            costs = self.position_costs().reshape(-1)
        else:
            costs = np.full(
                self.spec.out_h * self.spec.out_w,
                self.spec.receptive_field,
                dtype=np.float64,
            )
        if not use_output_switching:
            return np.full(self.spec.out_channels, float(costs.sum()))
        flat_omap = self.omap.reshape(self.spec.out_channels, -1)
        return flat_omap.astype(np.float64) @ costs

    def channel_switch_counts(self) -> np.ndarray:
        """Per-channel switching-index sums (layer-level Reorder view)."""
        return self.omap.reshape(self.spec.out_channels, -1).sum(axis=1)

    def channel_tile_switch_counts(self, tile_positions: int) -> np.ndarray:
        """Switching-index sums per (channel, tile), shape ``(C_out, S)``.

        This is exactly what the Reorder Unit computes: "this number does
        not represent the workloads for the whole channel, but for the
        tile that will be processed within one computation step" (paper
        Section IV-A).  The adaptive mapping regroups channels per tile
        window using these sums -- it sees switching bits only, not the
        true MAC costs under input sparsity, which is one reason DUET's
        utilisation stays below BOS's.
        """
        if tile_positions <= 0:
            raise ValueError(f"tile_positions must be positive, got {tile_positions}")
        flat = self.omap.reshape(self.spec.out_channels, -1).astype(np.int64)
        positions = flat.shape[1]
        num_tiles = -(-positions // tile_positions)
        pad = num_tiles * tile_positions - positions
        if pad:
            flat = np.pad(flat, ((0, 0), (0, pad)))
        return flat.reshape(self.spec.out_channels, num_tiles, tile_positions).sum(
            axis=2
        )


@dataclass
class FcLayerWorkload:
    """Simulator input for one fully-connected layer (one input vector).

    FC layers in CNNs are weight-dominated (AlexNet's fc6 alone holds 38M
    parameters), so -- like RNN gates -- their cost is fetching weight
    rows; the switching map gates both the GEMV rows and the DRAM traffic
    (paper Section VI: "our design can also save memory access of FC and
    RNN layers").

    Attributes:
        spec: the layer shape.
        omap: switching map of shape ``(out_features,)`` (1 = sensitive).
        imap: input sparsity map of shape ``(in_features,)`` (1 = nonzero).
    """

    spec: FCSpec
    omap: np.ndarray
    imap: np.ndarray

    def __post_init__(self):
        if self.omap.shape != (self.spec.out_features,):
            raise ValueError(
                f"omap shape {self.omap.shape} != ({self.spec.out_features},)"
            )
        if self.imap.shape != (self.spec.in_features,):
            raise ValueError(
                f"imap shape {self.imap.shape} != ({self.spec.in_features},)"
            )

    @property
    def sensitive_count(self) -> int:
        """Number of output rows the Executor computes."""
        return int(self.omap.sum())

    @property
    def sensitive_fraction(self) -> float:
        """Fraction of sensitive outputs."""
        return float(self.omap.mean())

    @property
    def input_density(self) -> float:
        """Fraction of nonzero inputs."""
        return float(self.imap.mean())


@dataclass
class RnnLayerWorkload:
    """Simulator input for one recurrent layer over a sequence.

    Attributes:
        spec: the layer shape.
        sensitive_counts: array of shape ``(T, G)`` -- per time step and
            gate, how many of the ``H`` output neurons are sensitive (rows
            the Executor computes and whose weights must be fetched).
    """

    spec: RNNSpec
    sensitive_counts: np.ndarray

    def __post_init__(self):
        expected = (self.spec.seq_len, self.spec.num_gates)
        if self.sensitive_counts.shape != expected:
            raise ValueError(
                f"sensitive_counts shape {self.sensitive_counts.shape} != {expected}"
            )
        if self.sensitive_counts.min() < 0 or self.sensitive_counts.max() > self.spec.hidden_size:
            raise ValueError("sensitive counts out of [0, hidden_size]")

    @property
    def sensitive_fraction(self) -> float:
        """Overall fraction of sensitive gate outputs."""
        total = self.spec.seq_len * self.spec.num_gates * self.spec.hidden_size
        return float(self.sensitive_counts.sum() / total)


@dataclass
class SparsityModel:
    """Two-level (channel, position) sparsity generator.

    Attributes:
        cnn_sensitive_mean: mean fraction of sensitive CONV outputs.  The
            paper's OS numbers put typical CONV computation sparsity around
            55-70% (CONV5 of AlexNet: 65.5%), i.e. sensitive ~ 0.3-0.45.
        cnn_channel_concentration: Beta concentration of per-channel rates;
            ~2-4 reproduces the strong imbalance the paper reports (OS MAC
            utilisation < 50%).
        cnn_input_density: fraction of nonzero inputs (post-ReLU typical
            ~0.3-0.45 on ImageNet CNNs).
        cnn_input_concentration: Beta concentration of per-input-channel
            densities.  Real feature maps have strongly channel-dependent
            sparsity; since a PE row's reduction slices span contiguous
            input-channel blocks, this variance drives the *within-row*
            imbalance that caps IOS utilisation (paper: ~30%).
        first_layer_dense: layer index 0 has no upstream OMap/IMap -- run
            it densely, matching the paper's pipeline (speculation for
            layer L+1 happens while executing L).
        rnn_sensitive_mean: mean sensitive fraction of RNN gate outputs
            (saturation regions cover most of sigmoid/tanh mass; the
            paper's RNN weight-fetch latency drops from 0.65 to 0.30 ms,
            i.e. roughly half the rows are fetched).
        rnn_step_std: relative std-dev of the per-step sensitive fraction.
        seed: base RNG seed; per-layer streams derive from it.
    """

    cnn_sensitive_mean: float = 0.38
    cnn_channel_concentration: float = 3.0
    cnn_input_density: float = 0.35
    cnn_input_concentration: float = 1.0
    first_layer_dense: bool = True
    rnn_sensitive_mean: float = 0.45
    rnn_step_std: float = 0.08
    seed: int = 0

    def _rng(self, layer_index: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, layer_index))

    def cnn_layer(self, spec: ConvSpec, layer_index: int) -> CnnLayerWorkload:
        """Sample the OMap/IMap workload for one CONV layer."""
        rng = self._rng(layer_index)
        dense = self.first_layer_dense and layer_index == 0
        if dense:
            omap = np.ones((spec.out_channels, spec.out_h, spec.out_w), dtype=np.uint8)
            imap = np.ones((spec.in_channels, spec.in_h, spec.in_w), dtype=np.uint8)
            return CnnLayerWorkload(spec, omap, imap)
        mean = self.cnn_sensitive_mean
        conc = self.cnn_channel_concentration
        p_channels = rng.beta(mean * conc, (1.0 - mean) * conc, size=spec.out_channels)
        omap = (
            rng.random((spec.out_channels, spec.out_h, spec.out_w))
            < p_channels[:, None, None]
        ).astype(np.uint8)
        in_mean = self.cnn_input_density
        in_conc = self.cnn_input_concentration
        p_inputs = rng.beta(
            in_mean * in_conc, (1.0 - in_mean) * in_conc, size=spec.in_channels
        )
        imap = (
            rng.random((spec.in_channels, spec.in_h, spec.in_w))
            < p_inputs[:, None, None]
        ).astype(np.uint8)
        return CnnLayerWorkload(spec, omap, imap)

    def rnn_layer(self, spec: RNNSpec, layer_index: int) -> RnnLayerWorkload:
        """Sample per-step per-gate sensitive counts for one RNN layer."""
        rng = self._rng(layer_index)
        fracs = rng.normal(
            self.rnn_sensitive_mean,
            self.rnn_step_std,
            size=(spec.seq_len, spec.num_gates),
        )
        fracs = np.clip(fracs, 0.0, 1.0)
        counts = rng.binomial(spec.hidden_size, fracs)
        return RnnLayerWorkload(spec, counts.astype(np.int64))

    def fc_layer(self, spec: FCSpec, layer_index: int) -> FcLayerWorkload:
        """Sample the switching/input maps for one FC layer.

        FC layers follow ReLU conv stacks, so their input density matches
        the CNN input density and their sensitive fraction the CNN mean.
        """
        rng = self._rng(layer_index)
        omap = (rng.random(spec.out_features) < self.cnn_sensitive_mean).astype(
            np.uint8
        )
        imap = (rng.random(spec.in_features) < self.cnn_input_density).astype(
            np.uint8
        )
        return FcLayerWorkload(spec, omap, imap)


def cnn_workloads(
    model: ModelSpec,
    sparsity: SparsityModel | None = None,
    include_fc: bool = False,
) -> list:
    """Workloads for the layers of a CNN model spec, in order.

    By default only CONV layers are included, matching the paper's CNN
    evaluation (Fig. 12's breakdowns are CONV-only; FC layers contribute
    <10% of CNN MACs).  Pass ``include_fc=True`` to also generate
    :class:`FcLayerWorkload` entries for the classifier layers -- the FC
    path exercises the weight-row gating the paper highlights for
    memory-bound layers (Section VI).  The final classifier layer (no
    ReLU) always stays dense.
    """
    if model.domain != "cnn":
        raise ValueError(f"{model.name} is not a CNN model")
    sparsity = sparsity if sparsity is not None else SparsityModel()
    workloads: list = [
        sparsity.cnn_layer(spec, i) for i, spec in enumerate(model.conv_layers)
    ]
    if include_fc:
        fc_specs = [l for l in model.layers if isinstance(l, FCSpec)]
        for j, spec in enumerate(fc_specs):
            index = len(model.conv_layers) + j
            wl = sparsity.fc_layer(spec, index)
            if j == len(fc_specs) - 1:  # the logits layer has no ReLU
                wl = FcLayerWorkload(
                    spec,
                    np.ones(spec.out_features, dtype=np.uint8),
                    wl.imap,
                )
            workloads.append(wl)
    return workloads


def rnn_workloads(
    model: ModelSpec, sparsity: SparsityModel | None = None
) -> list[RnnLayerWorkload]:
    """Workloads for every recurrent layer of an RNN model spec, in order."""
    if model.domain != "rnn":
        raise ValueError(f"{model.name} is not an RNN model")
    sparsity = sparsity if sparsity is not None else SparsityModel()
    return [
        sparsity.rnn_layer(spec, i) for i, spec in enumerate(model.rnn_layers)
    ]
