"""Workload trace serialization: save/load switching maps as ``.npz``.

Measured switching maps (from :func:`repro.workloads.trace_cnn_workloads`)
are the repository's exchange format between the algorithm and
architecture levels; persisting them lets one expensive dualized-model
run feed many simulator experiments.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.models.layer_spec import ConvSpec
from repro.workloads.sparsity import CnnLayerWorkload

__all__ = ["save_cnn_workloads", "load_cnn_workloads"]

_SPEC_FIELDS = (
    "in_channels",
    "out_channels",
    "kernel",
    "stride",
    "padding",
    "in_h",
    "in_w",
)


def save_cnn_workloads(
    workloads: list[CnnLayerWorkload], path: str | pathlib.Path
) -> None:
    """Persist a list of CONV workloads (specs + maps) to one archive."""
    if not workloads:
        raise ValueError("no workloads to save")
    payload: dict[str, np.ndarray] = {
        "names": np.array([w.spec.name for w in workloads]),
        "geometry": np.array(
            [[getattr(w.spec, f) for f in _SPEC_FIELDS] for w in workloads],
            dtype=np.int64,
        ),
    }
    for i, workload in enumerate(workloads):
        payload[f"omap_{i}"] = workload.omap.astype(np.uint8)
        payload[f"imap_{i}"] = workload.imap.astype(np.uint8)
    np.savez_compressed(str(path), **payload)


def load_cnn_workloads(path: str | pathlib.Path) -> list[CnnLayerWorkload]:
    """Load workloads saved by :func:`save_cnn_workloads`."""
    with np.load(str(path), allow_pickle=False) as archive:
        names = archive["names"]
        geometry = archive["geometry"]
        workloads = []
        for i, name in enumerate(names):
            fields = dict(zip(_SPEC_FIELDS, (int(v) for v in geometry[i])))
            spec = ConvSpec(str(name), **fields)
            workloads.append(
                CnnLayerWorkload(spec, archive[f"omap_{i}"], archive[f"imap_{i}"])
            )
    return workloads
