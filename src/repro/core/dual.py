"""Online dual-module layers: speculate, switch, execute, mix.

Each ``DualModule*`` pairs an accurate layer from :mod:`repro.nn` with a
distilled approximate module from :mod:`repro.core.approx` and executes the
paper's online procedure (Fig. 3):

1. run the approximate module on the (quantized) input,
2. generate the switching map ``m`` (Eq. 3),
3. run the accurate module only where ``m == 1``,
4. assemble the final output (Eq. 2) and apply the nonlinearity.

Output semantics follow the paper's hardware:

- ReLU layers (CNN path): insensitive outputs are *set to zero* -- the
  approximate values are used only for the switching decision, and the
  resulting zeros make the corrected OMap double as the next layer's IMap
  (Section III-C).
- sigmoid/tanh layers (RNN path): insensitive outputs keep the
  *dequantized approximate activations* (Section IV-B), which is why the
  Speculator has a dequantizer and stores approximate results to the GLB
  for RNNs only.

Every forward also returns a :class:`DualModuleReport` with the switching
maps and a :class:`~repro.core.stats.LayerSavings` account of MACs and
weight reads, which the architecture simulator consumes as its workload
description.

MAC/weight-read accounting treats each batch row independently (the
paper's RNN evaluation uses batch size one; for CNNs the counts are summed
over the batch, matching per-image execution on the accelerator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.approx import (
    ApproximateConv2d,
    ApproximateGRUCell,
    ApproximateLinear,
    ApproximateLSTMCell,
)
from repro.core.cache import switching_map_cached
from repro.core.stats import LayerSavings
from repro.core.switching import (
    correct_omap_after_relu,
    mix_outputs,
    switching_map,
)
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear
from repro.nn.recurrent import GRUCell, LSTMCell

__all__ = [
    "DualModuleReport",
    "DualModuleLinear",
    "DualModuleConv2d",
    "DualModuleLSTMCell",
    "DualModuleGRUCell",
]


@dataclass
class DualModuleReport:
    """Per-forward record of switching decisions and costs.

    Attributes:
        switching_map: the OMap ``m`` (1 = computed by the Executor).  For
            recurrent cells this is the stacked all-gates map.
        corrected_map: ReLU layers only -- the OMap after the paper's
            1-to-0 correction step; reusable as the next layer's IMap.
        savings: MAC / weight-read accounting for this forward.
        gate_maps: recurrent cells only -- per-gate switching maps.
    """

    switching_map: np.ndarray
    savings: LayerSavings
    corrected_map: np.ndarray | None = None
    gate_maps: dict[str, np.ndarray] = field(default_factory=dict)


def _resolve_gate_thresholds(
    threshold: float | dict[str, float], gate_names: tuple[str, ...]
) -> dict[str, float]:
    """Expand a scalar threshold to a per-gate dict, validating dict keys."""
    if isinstance(threshold, dict):
        missing = set(gate_names) - set(threshold)
        if missing:
            raise ValueError(f"missing thresholds for gates: {sorted(missing)}")
        return {g: float(threshold[g]) for g in gate_names}
    return {g: float(threshold) for g in gate_names}


class DualModuleLinear:
    """Dual-module feed-forward layer (the paper's running FF example).

    Args:
        accurate: the pre-trained ``Linear`` layer (teacher / Executor side).
        approx: the distilled :class:`ApproximateLinear` (Speculator side).
        activation: ``relu``, ``sigmoid`` or ``tanh``; selects both the
            nonlinearity and the switching rule.
        threshold: the tuned switching threshold ``theta``.
    """

    def __init__(
        self,
        accurate: Linear,
        approx: ApproximateLinear,
        activation: str,
        threshold: float,
    ):
        if accurate.in_features != approx.in_features:
            raise ValueError("accurate/approx input dimensions disagree")
        if accurate.out_features != approx.out_features:
            raise ValueError("accurate/approx output dimensions disagree")
        self.accurate = accurate
        self.approx = approx
        self.activation = activation
        self.threshold = float(threshold)
        self._act = F.activation_by_name(activation)

    def forward(
        self, x: np.ndarray, imap: np.ndarray | None = None
    ) -> tuple[np.ndarray, DualModuleReport]:
        """Run dual-module processing on a batch.

        Args:
            x: inputs of shape ``(batch, in_features)``.
            imap: optional input sparsity map of the same shape (1 =
                nonzero); reduces the executed-MAC account per the paper's
                integrated input+output switching (IOS).

        Returns:
            ``(activated_output, report)``.
        """
        x = np.asarray(x, dtype=np.float64)
        batch = x.shape[0]
        d, n = self.accurate.in_features, self.accurate.out_features

        y_approx = self.approx.forward(x)
        omap = switching_map(y_approx, self.activation, self.threshold)

        y_acc = x @ self.accurate.weight.data.T
        if self.accurate.bias is not None:
            y_acc = y_acc + self.accurate.bias.data

        if self.activation == "relu":
            mixed = np.where(omap.astype(bool), y_acc, 0.0)
            out = F.relu(mixed)
            corrected = correct_omap_after_relu(omap, out)
        else:
            mixed = mix_outputs(y_acc, y_approx, omap)
            out = self._act(mixed)
            corrected = None

        sensitive = int(omap.sum())
        if imap is not None:
            nnz_per_row = np.asarray(imap).reshape(batch, d).sum(axis=1)
            executed = int((omap.sum(axis=1) * nnz_per_row).sum())
        else:
            executed = sensitive * d
        savings = LayerSavings(
            dense_macs=batch * n * d,
            executed_macs=executed,
            speculation_macs=batch * self.approx.macs_per_vector(),
            speculation_additions=batch * self.approx.additions_per_vector(),
            dense_weight_reads=batch * n * d,
            weight_reads=sensitive * d,
            speculation_weight_reads=batch * self.approx.weight.size,
            outputs_total=batch * n,
            outputs_sensitive=sensitive,
        )
        return out, DualModuleReport(omap, savings, corrected_map=corrected)

    __call__ = forward

    def __repr__(self) -> str:
        return (
            f"DualModuleLinear({self.accurate!r}, activation={self.activation!r}, "
            f"theta={self.threshold})"
        )


class DualModuleConv2d:
    """Dual-module convolution layer via the im2col lowering (CNN path).

    Insensitive outputs are zeroed (ReLU semantics), the OMap is corrected
    after ReLU, and the corrected map is returned so the caller can feed it
    to the next layer as its IMap -- the paper's "pay once, use twice".
    """

    def __init__(
        self,
        accurate: Conv2d,
        approx: ApproximateConv2d,
        threshold: float,
    ):
        if accurate.kernel_size != approx.kernel_size:
            raise ValueError("accurate/approx kernel sizes disagree")
        if accurate.stride != approx.stride or accurate.padding != approx.padding:
            raise ValueError("accurate/approx geometry disagrees")
        if accurate.out_channels != approx.out_channels:
            raise ValueError("accurate/approx channel counts disagree")
        self.accurate = accurate
        self.approx = approx
        self.threshold = float(threshold)

    def forward(
        self, x: np.ndarray, imap: np.ndarray | None = None
    ) -> tuple[np.ndarray, DualModuleReport]:
        """Run dual-module processing on a batch of images.

        Args:
            x: inputs of shape ``(N, C, H, W)``.
            imap: optional input sparsity map of the same shape.

        Returns:
            ``(activated_output, report)``; ``report.corrected_map`` is the
            next layer's IMap.
        """
        x = np.asarray(x, dtype=np.float64)
        n_batch, c_in, _, _ = x.shape
        kh, kw = self.accurate.kernel_size
        receptive = c_in * kh * kw

        y_approx = self.approx.forward(x)
        # tuning sweeps re-evaluate the same batch at repeated thresholds;
        # the map is memoized on (layer, content fingerprint, threshold)
        omap = switching_map_cached(
            y_approx, "relu", self.threshold, layer=("conv", id(self.accurate))
        )

        y_acc = self.accurate(x)
        mixed = np.where(omap.astype(bool), y_acc, 0.0)
        out = F.relu(mixed)
        corrected = correct_omap_after_relu(omap, out)

        sensitive = int(omap.sum())
        n_out = out.size
        if imap is not None:
            imap_cols = F.im2col(
                np.asarray(imap, dtype=np.float64),
                self.accurate.kernel_size,
                self.accurate.stride,
                self.accurate.padding,
            )
            # effective receptive-field size per output spatial position
            effective = imap_cols.sum(axis=1)  # (N * H' * W',)
            out_h, out_w = out.shape[2], out.shape[3]
            effective = effective.reshape(n_batch, out_h, out_w)
            executed = int(
                (omap * effective[:, None, :, :]).sum()
            )
        else:
            executed = sensitive * receptive
        savings = LayerSavings(
            dense_macs=n_out * receptive,
            executed_macs=executed,
            speculation_macs=(n_out // self.accurate.out_channels)
            * self.accurate.out_channels
            * self.approx.reduced_features,
            speculation_additions=(n_out // self.accurate.out_channels)
            * self.approx.inner.additions_per_vector(),
            dense_weight_reads=n_out * receptive,
            weight_reads=sensitive * receptive,
            speculation_weight_reads=n_batch * self.approx.inner.weight.size,
            outputs_total=n_out,
            outputs_sensitive=sensitive,
        )
        return out, DualModuleReport(omap, savings, corrected_map=corrected)

    __call__ = forward

    def __repr__(self) -> str:
        return f"DualModuleConv2d({self.accurate!r}, theta={self.threshold})"


#: Gate activations used by the switching rules, in stacking order.
_LSTM_GATES: tuple[tuple[str, str], ...] = (
    ("i", "sigmoid"),
    ("f", "sigmoid"),
    ("g", "tanh"),
    ("o", "sigmoid"),
)
_GRU_GATES: tuple[tuple[str, str], ...] = (
    ("r", "sigmoid"),
    ("z", "sigmoid"),
    ("n", "tanh"),
)


class DualModuleLSTMCell:
    """Dual-module LSTM cell with per-gate speculation (RNN path).

    For each of the four gates the Speculator produces approximate
    pre-activations; insensitive neurons keep the approximate *activated*
    value while sensitive neurons are recomputed by the Executor.  Weight
    rows of both ``w_ih`` and ``w_hh`` are only "fetched" for sensitive
    neurons, which is the memory-access saving of Section IV-B.

    Args:
        accurate: the pre-trained :class:`~repro.nn.recurrent.LSTMCell`.
        approx: the distilled :class:`ApproximateLSTMCell`.
        threshold: scalar or per-gate dict ``{"i","f","g","o"}``.
    """

    GATES = _LSTM_GATES

    def __init__(
        self,
        accurate: LSTMCell,
        approx: ApproximateLSTMCell,
        threshold: float | dict[str, float],
    ):
        if accurate.input_size != approx.input_size:
            raise ValueError("accurate/approx input sizes disagree")
        if accurate.hidden_size != approx.hidden_size:
            raise ValueError("accurate/approx hidden sizes disagree")
        self.accurate = accurate
        self.approx = approx
        self.thresholds = _resolve_gate_thresholds(
            threshold, tuple(g for g, _ in self.GATES)
        )

    def forward(
        self, x: np.ndarray, state: tuple[np.ndarray, np.ndarray]
    ) -> tuple[tuple[np.ndarray, np.ndarray], DualModuleReport]:
        """Run one dual-module LSTM step.

        Args:
            x: input of shape ``(batch, input_size)``.
            state: ``(h, c)`` from the previous step.

        Returns:
            ``((h_next, c_next), report)``.
        """
        x = np.asarray(x, dtype=np.float64)
        h_prev, c_prev = state
        batch = x.shape[0]
        hs = self.accurate.hidden_size
        d_in, d_hid = self.accurate.input_size, hs

        pre_approx = self.approx.pre_activations(x, h_prev, quantized=True)
        pre_acc = (
            x @ self.accurate.w_ih.data.T
            + h_prev @ self.accurate.w_hh.data.T
            + self.accurate.b.data
        )

        gate_maps: dict[str, np.ndarray] = {}
        gate_values: dict[str, np.ndarray] = {}
        for idx, (gate, act_name) in enumerate(self.GATES):
            sl = slice(idx * hs, (idx + 1) * hs)
            gmap = switching_map(pre_approx[:, sl], act_name, self.thresholds[gate])
            mixed = mix_outputs(pre_acc[:, sl], pre_approx[:, sl], gmap)
            gate_values[gate] = F.activation_by_name(act_name)(mixed)
            gate_maps[gate] = gmap

        c_next = gate_values["f"] * c_prev + gate_values["i"] * gate_values["g"]
        h_next = gate_values["o"] * F.tanh(c_next)

        omap = np.concatenate([gate_maps[g] for g, _ in self.GATES], axis=1)
        sensitive = int(omap.sum())
        row_cost = d_in + d_hid
        savings = LayerSavings(
            dense_macs=batch * 4 * hs * row_cost,
            executed_macs=sensitive * row_cost,
            speculation_macs=batch * self.approx.macs_per_step(),
            speculation_additions=batch * self.approx.additions_per_step(),
            dense_weight_reads=batch * 4 * hs * row_cost,
            weight_reads=sensitive * row_cost,
            speculation_weight_reads=batch
            * (self.approx.w_ih.size + self.approx.w_hh.size),
            outputs_total=batch * 4 * hs,
            outputs_sensitive=sensitive,
        )
        report = DualModuleReport(omap, savings, gate_maps=gate_maps)
        return (h_next, c_next), report

    __call__ = forward

    def run_sequence(
        self, xs: np.ndarray, state: tuple[np.ndarray, np.ndarray] | None = None
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray], list[DualModuleReport]]:
        """Unroll over ``(T, batch, input_size)``; returns (outputs, state, reports)."""
        xs = np.asarray(xs, dtype=np.float64)
        seq_len, batch = xs.shape[0], xs.shape[1]
        if state is None:
            state = self.accurate.init_state(batch)
        outputs = np.empty((seq_len, batch, self.accurate.hidden_size))
        reports = []
        for t in range(seq_len):
            state, report = self.forward(xs[t], state)
            outputs[t] = state[0]
            reports.append(report)
        return outputs, state, reports

    def __repr__(self) -> str:
        return f"DualModuleLSTMCell({self.accurate!r}, thetas={self.thresholds})"


class DualModuleGRUCell:
    """Dual-module GRU cell with per-gate speculation (RNN path).

    The reset gate ``r`` used in the accurate candidate pre-activation is
    the *mixed* reset gate, so insensitive reset neurons feed their
    approximate value forward exactly as the hardware would.
    """

    GATES = _GRU_GATES

    def __init__(
        self,
        accurate: GRUCell,
        approx: ApproximateGRUCell,
        threshold: float | dict[str, float],
    ):
        if accurate.input_size != approx.input_size:
            raise ValueError("accurate/approx input sizes disagree")
        if accurate.hidden_size != approx.hidden_size:
            raise ValueError("accurate/approx hidden sizes disagree")
        self.accurate = accurate
        self.approx = approx
        self.thresholds = _resolve_gate_thresholds(
            threshold, tuple(g for g, _ in self.GATES)
        )

    def forward(
        self, x: np.ndarray, h_prev: np.ndarray
    ) -> tuple[np.ndarray, DualModuleReport]:
        """Run one dual-module GRU step; returns ``(h_next, report)``."""
        x = np.asarray(x, dtype=np.float64)
        batch = x.shape[0]
        hs = self.accurate.hidden_size
        d_in, d_hid = self.accurate.input_size, hs

        pre_approx = self.approx.pre_activations(x, h_prev, quantized=True)
        gi = x @ self.accurate.w_ih.data.T + self.accurate.b_ih.data
        gh = h_prev @ self.accurate.w_hh.data.T + self.accurate.b_hh.data

        # reset gate
        r_acc = gi[:, :hs] + gh[:, :hs]
        r_map = switching_map(pre_approx[:, :hs], "sigmoid", self.thresholds["r"])
        r = F.sigmoid(mix_outputs(r_acc, pre_approx[:, :hs], r_map))
        # update gate
        z_acc = gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs]
        z_map = switching_map(
            pre_approx[:, hs : 2 * hs], "sigmoid", self.thresholds["z"]
        )
        z = F.sigmoid(mix_outputs(z_acc, pre_approx[:, hs : 2 * hs], z_map))
        # candidate gate (accurate path uses the mixed reset gate)
        n_acc = gi[:, 2 * hs :] + r * gh[:, 2 * hs :]
        n_map = switching_map(pre_approx[:, 2 * hs :], "tanh", self.thresholds["n"])
        n = F.tanh(mix_outputs(n_acc, pre_approx[:, 2 * hs :], n_map))

        h_next = (1.0 - z) * n + z * h_prev

        gate_maps = {"r": r_map, "z": z_map, "n": n_map}
        omap = np.concatenate([r_map, z_map, n_map], axis=1)
        sensitive = int(omap.sum())
        row_cost = d_in + d_hid
        savings = LayerSavings(
            dense_macs=batch * 3 * hs * row_cost,
            executed_macs=sensitive * row_cost,
            speculation_macs=batch * self.approx.macs_per_step(),
            speculation_additions=batch * self.approx.additions_per_step(),
            dense_weight_reads=batch * 3 * hs * row_cost,
            weight_reads=sensitive * row_cost,
            speculation_weight_reads=batch
            * (self.approx.w_ih.size + self.approx.w_hh.size),
            outputs_total=batch * 3 * hs,
            outputs_sensitive=sensitive,
        )
        report = DualModuleReport(omap, savings, gate_maps=gate_maps)
        return h_next, report

    __call__ = forward

    def run_sequence(
        self, xs: np.ndarray, h: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, list[DualModuleReport]]:
        """Unroll over ``(T, batch, input_size)``; returns (outputs, h, reports)."""
        xs = np.asarray(xs, dtype=np.float64)
        seq_len, batch = xs.shape[0], xs.shape[1]
        if h is None:
            h = self.accurate.init_state(batch)
        outputs = np.empty((seq_len, batch, self.accurate.hidden_size))
        reports = []
        for t in range(seq_len):
            h, report = self.forward(xs[t], h)
            outputs[t] = h
            reports.append(report)
        return outputs, h, reports

    def __repr__(self) -> str:
        return f"DualModuleGRUCell({self.accurate!r}, thetas={self.thresholds})"
