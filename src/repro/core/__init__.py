"""Dual-module processing -- the paper's primary contribution.

Given a pre-trained DNN layer (the *accurate module*), DUET learns a
lightweight *approximate module* (quantized + dimension-reduced, "QDR")
offline via knowledge distillation, then at inference time:

1. runs the approximate module on (quantized) input activations,
2. applies threshold-based neuron-wise *dynamic switching* (Eq. 3) to
   decide which output activations fall in the insensitive region of the
   nonlinearity,
3. runs the accurate module only for the sensitive activations, and
4. mixes the two results (Eq. 2): ``y = y_acc * m + y_approx * (1 - m)``.

Modules:

- :mod:`repro.core.projection` -- ternary random projection (Achlioptas
  distribution), applied with additions/accumulations only.
- :mod:`repro.core.switching`  -- switching-map rules for ReLU and
  sigmoid/tanh, map correction and IMap derivation.
- :mod:`repro.core.approx`     -- QDR approximate modules for Linear,
  Conv2d, LSTM and GRU cells.
- :mod:`repro.core.distill`    -- offline distillation (Eq. 1), both
  closed-form ridge regression and SGD.
- :mod:`repro.core.dual`       -- online dual-module layers with full
  FLOPs / memory-access accounting.
- :mod:`repro.core.thresholds` -- per-layer threshold tuning under a
  quality budget.
- :mod:`repro.core.stats`      -- insensitive-region statistics (Fig. 2)
  and savings accounting (Fig. 10).
- :mod:`repro.core.cache`      -- content-fingerprint memoization of
  im2col buffers, switching maps and tuned thresholds for the offline
  calibration sweeps.
"""

from repro.core.approx import (
    ApproximateConv2d,
    ApproximateGRUCell,
    ApproximateLinear,
    ApproximateLSTMCell,
)
from repro.core.distill import distill_linear, distill_conv2d, distill_lstm_cell, distill_gru_cell
from repro.core.dual import (
    DualModuleConv2d,
    DualModuleGRUCell,
    DualModuleLinear,
    DualModuleLSTMCell,
)
from repro.core.projection import TernaryRandomProjection

__all__ = [
    "TernaryRandomProjection",
    "ApproximateLinear",
    "ApproximateConv2d",
    "ApproximateLSTMCell",
    "ApproximateGRUCell",
    "distill_linear",
    "distill_conv2d",
    "distill_lstm_cell",
    "distill_gru_cell",
    "DualModuleLinear",
    "DualModuleConv2d",
    "DualModuleLSTMCell",
    "DualModuleGRUCell",
]
