"""Ternary random projection (paper Section II-A).

The approximate module reduces the input dimension ``d`` to ``k`` with a
random projection matrix ``P`` whose elements are ternary.  We follow the
Achlioptas distribution the paper cites: each entry is

    +s with probability 1/6,  0 with probability 2/3,  -s with probability 1/6,

with ``s = sqrt(3 / k)`` so that ``E[P P^T] = I`` and distances are
preserved in expectation.  Because the nonzero entries share a single
magnitude, the projection is computed with sign flips, additions and one
final scalar multiply -- no MACs -- which is exactly what the Speculator's
Alignment Units + carry-save adder trees implement in hardware
(Section III-B, Step 2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["TernaryRandomProjection"]


class TernaryRandomProjection:
    """A fixed ternary projection ``P in R^{k x d}``.

    Attributes:
        in_features: source dimension ``d``.
        out_features: reduced dimension ``k``.
        signs: the ternary sign pattern in ``{-1, 0, +1}^{k x d}``.
        scale: shared magnitude ``sqrt(3 / k)`` of the nonzero entries.
    """

    #: Achlioptas probabilities for (-1, 0, +1).
    PROBABILITIES = (1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0)

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ):
        if out_features <= 0 or in_features <= 0:
            raise ValueError(
                f"dimensions must be positive, got d={in_features}, k={out_features}"
            )
        if out_features > in_features:
            raise ValueError(
                f"projection must reduce dimension: k={out_features} > d={in_features}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.signs = rng.choice(
            np.array([-1, 0, 1], dtype=np.int8),
            size=(out_features, in_features),
            p=self.PROBABILITIES,
        )
        self.scale = float(np.sqrt(3.0 / out_features))

    @property
    def matrix(self) -> np.ndarray:
        """The dense float projection matrix ``P = scale * signs``."""
        return self.signs.astype(np.float64) * self.scale

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Project rows of ``x``: returns ``x @ P.T``.

        Args:
            x: array of shape ``(..., d)``.

        Returns:
            Array of shape ``(..., k)``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected trailing dim {self.in_features}, got {x.shape[-1]}"
            )
        return (x @ self.signs.T.astype(np.float64)) * self.scale

    def apply_integer(self, q: np.ndarray) -> np.ndarray:
        """Project integer payloads exactly as the hardware adder trees do.

        The Alignment Units flip signs per the ternary pattern and the
        adder trees accumulate; the shared ``scale`` is folded into the
        downstream tensor scale rather than multiplied per element.

        Args:
            q: integer array of shape ``(..., d)``.

        Returns:
            Integer array of shape ``(..., k)`` -- sums of sign-aligned
            inputs (the caller owns the ``scale`` bookkeeping).
        """
        q = np.asarray(q)
        if not np.issubdtype(q.dtype, np.integer):
            raise TypeError(f"integer payload expected, got {q.dtype}")
        if q.shape[-1] != self.in_features:
            raise ValueError(
                f"expected trailing dim {self.in_features}, got {q.shape[-1]}"
            )
        return q.astype(np.int64) @ self.signs.T.astype(np.int64)

    def addition_count(self) -> int:
        """Number of additions one projection of a single vector costs.

        Each nonzero entry of ``P`` contributes one (sign-aligned) addition;
        this is the operation count the Speculator's adder trees perform and
        what the FLOPs accounting in :mod:`repro.core.stats` charges.
        """
        return int(np.count_nonzero(self.signs))

    def __repr__(self) -> str:
        return (
            f"TernaryRandomProjection(d={self.in_features}, k={self.out_features}, "
            f"nnz={self.addition_count()})"
        )
