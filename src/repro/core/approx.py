"""Approximate (QDR) modules: quantized + dimension-reduced layer twins.

Each approximate module pairs with one accurate layer and computes a cheap
estimate of its pre-activations:

1. quantize the input activations (INT4 by default, matching the
   Speculator's truncating quantizer),
2. reduce dimension with a ternary random projection (additions only),
3. multiply with the low-precision QDR weight matrix (small ``k`` inner
   dimension), add the learned bias.

The weights ``W'`` and bias ``b'`` are learned offline by distillation
(:mod:`repro.core.distill`).  ``forward_float`` bypasses quantization and
is used during training; ``forward`` emulates the quantized inference path.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import im2col_cached
from repro.core.projection import TernaryRandomProjection
from repro.nn import functional as F
from repro.quant import int_range, quantize_linear

__all__ = [
    "ApproximateLinear",
    "ApproximateConv2d",
    "ApproximateLSTMCell",
    "ApproximateGRUCell",
]


def _quantize_dequantize(x: np.ndarray, bits: int) -> np.ndarray:
    """Round-trip a float tensor through ``bits``-wide symmetric quantization."""
    return quantize_linear(x, bits).to_float()


def _quantize_dequantize_rows(w: np.ndarray, bits: int) -> np.ndarray:
    """Per-row symmetric quantization round trip for 2-D weight matrices.

    Each output row gets its own scale (max-abs calibration).  Distilled
    QDR weights have strongly row-dependent magnitudes, and a per-output
    scale costs the hardware nothing extra: it folds into the per-neuron
    dequantization / threshold comparison the Speculator already performs.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"expected 2-D weights, got shape {w.shape}")
    _, hi = int_range(bits)
    max_abs = np.max(np.abs(w), axis=1, keepdims=True)
    scales = np.where(max_abs > 0, max_abs / hi, 1.0)
    q = np.clip(np.rint(w / scales), -hi - 1, hi)
    return q * scales


class ApproximateLinear:
    """QDR twin of a ``Linear(in_features -> out_features)`` layer.

    Attributes:
        projection: the fixed ternary projection ``P`` (d -> k).
        weight: QDR weight master copy ``W'`` of shape ``(n, k)`` (float;
            quantized on the fly according to ``weight_bits``).
        bias: learned bias ``b'`` of shape ``(n,)``.
        weight_bits / input_bits: quantization widths (paper default INT4).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        reduced_features: int,
        rng: np.random.Generator | None = None,
        weight_bits: int = 4,
        input_bits: int = 4,
    ):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.reduced_features = reduced_features
        self.projection = TernaryRandomProjection(in_features, reduced_features, rng)
        self.weight = rng.normal(
            0.0, 1.0 / np.sqrt(reduced_features), size=(out_features, reduced_features)
        )
        self.bias = np.zeros(out_features)
        self.weight_bits = weight_bits
        self.input_bits = input_bits

    # -- execution -----------------------------------------------------------

    def reduce(self, x: np.ndarray, quantized: bool = True) -> np.ndarray:
        """Quantize (optionally) and project the input: the QDR front end."""
        x = np.asarray(x, dtype=np.float64)
        if quantized:
            x = _quantize_dequantize(x, self.input_bits)
        return self.projection.apply(x)

    def quantized_weight(self) -> np.ndarray:
        """The weight as seen by the INT-``weight_bits`` datapath.

        Quantization is per output row (see
        :func:`_quantize_dequantize_rows`).
        """
        return _quantize_dequantize_rows(self.weight, self.weight_bits)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Quantized inference path: ``y' = W'_q (P x_q) + b'``."""
        reduced = self.reduce(x, quantized=True)
        return reduced @ self.quantized_weight().T + self.bias

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        """Full-precision path used during distillation training."""
        reduced = self.reduce(x, quantized=False)
        return reduced @ self.weight.T + self.bias

    __call__ = forward

    # -- cost accounting -------------------------------------------------------

    def macs_per_vector(self) -> int:
        """INT4 multiply-accumulates per input vector (systolic-array work)."""
        return self.out_features * self.reduced_features

    def additions_per_vector(self) -> int:
        """Additions per input vector spent in the projection adder trees."""
        return self.projection.addition_count()

    def parameter_count(self) -> int:
        """Scalar parameters of the QDR module (weights + bias)."""
        return self.weight.size + self.bias.size

    def __repr__(self) -> str:
        return (
            f"ApproximateLinear(d={self.in_features}, k={self.reduced_features}, "
            f"n={self.out_features}, INT{self.weight_bits})"
        )


class ApproximateConv2d:
    """QDR twin of a ``Conv2d`` layer via the im2col lowering.

    The receptive-field dimension ``d = C * kh * kw`` is projected down to
    ``k``; the QDR weight has shape ``(out_channels, k)``.  Spatial
    geometry (stride/padding) mirrors the accurate layer.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        reduced_features: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
        weight_bits: int = 4,
        input_bits: int = 4,
    ):
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        patch_dim = in_channels * kernel_size[0] * kernel_size[1]
        self.inner = ApproximateLinear(
            patch_dim,
            out_channels,
            reduced_features,
            rng=rng,
            weight_bits=weight_bits,
            input_bits=input_bits,
        )

    @property
    def reduced_features(self) -> int:
        """The reduced receptive-field dimension ``k``."""
        return self.inner.reduced_features

    def _cols(self, x: np.ndarray) -> tuple[np.ndarray, tuple[int, int, int]]:
        x = np.asarray(x, dtype=np.float64)
        n, c, h, w = x.shape
        kh, kw = self.kernel_size
        out_h = F.conv_output_size(h, kh, self.stride, self.padding)
        out_w = F.conv_output_size(w, kw, self.stride, self.padding)
        # threshold sweeps re-run the same calibration batch through every
        # candidate; the lowering is memoized on the input's content
        # fingerprint (read-only shared buffer -- never written below)
        cols = im2col_cached(x, self.kernel_size, self.stride, self.padding)
        return cols, (n, out_h, out_w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Quantized inference path; returns ``(N, out_channels, H', W')``."""
        cols, (n, out_h, out_w) = self._cols(x)
        y = self.inner.forward(cols)
        return y.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        """Full-precision path used during distillation training."""
        cols, (n, out_h, out_w) = self._cols(x)
        y = self.inner.forward_float(cols)
        return y.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    __call__ = forward

    def __repr__(self) -> str:
        return (
            f"ApproximateConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, k={self.reduced_features})"
        )


class _ApproximateRecurrentBase:
    """Shared QDR plumbing for recurrent cells.

    RNN cells have an input-to-hidden and a hidden-to-hidden matrix; the
    paper constructs "two low-dimensional and low-precision weight
    matrices" (Section II-B).  We keep one ternary projection per input
    stream and one stacked QDR gate matrix per stream.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_gates: int,
        reduced_input: int,
        reduced_hidden: int,
        rng: np.random.Generator | None = None,
        weight_bits: int = 4,
        input_bits: int = 4,
    ):
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_gates = num_gates
        self.proj_x = TernaryRandomProjection(input_size, reduced_input, rng)
        self.proj_h = TernaryRandomProjection(hidden_size, reduced_hidden, rng)
        rows = num_gates * hidden_size
        self.w_ih = rng.normal(0.0, 1.0 / np.sqrt(reduced_input), (rows, reduced_input))
        self.w_hh = rng.normal(0.0, 1.0 / np.sqrt(reduced_hidden), (rows, reduced_hidden))
        self.bias = np.zeros(rows)
        self.weight_bits = weight_bits
        self.input_bits = input_bits

    @property
    def reduced_input(self) -> int:
        """Reduced input dimension ``k_x``."""
        return self.proj_x.out_features

    @property
    def reduced_hidden(self) -> int:
        """Reduced hidden dimension ``k_h``."""
        return self.proj_h.out_features

    def _weights(self, quantized: bool) -> tuple[np.ndarray, np.ndarray]:
        if quantized:
            return (
                _quantize_dequantize_rows(self.w_ih, self.weight_bits),
                _quantize_dequantize_rows(self.w_hh, self.weight_bits),
            )
        return self.w_ih, self.w_hh

    def pre_activations(
        self, x: np.ndarray, h: np.ndarray, quantized: bool = True
    ) -> np.ndarray:
        """Approximate stacked gate pre-activations, shape ``(batch, G*H)``."""
        x = np.asarray(x, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        if quantized:
            x = _quantize_dequantize(x, self.input_bits)
            h = _quantize_dequantize(h, self.input_bits)
        rx = self.proj_x.apply(x)
        rh = self.proj_h.apply(h)
        w_ih, w_hh = self._weights(quantized)
        return rx @ w_ih.T + rh @ w_hh.T + self.bias

    def macs_per_step(self) -> int:
        """INT4 MACs per time step (both streams, all gates)."""
        rows = self.num_gates * self.hidden_size
        return rows * (self.reduced_input + self.reduced_hidden)

    def additions_per_step(self) -> int:
        """Projection additions per time step."""
        return self.proj_x.addition_count() + self.proj_h.addition_count()

    def parameter_count(self) -> int:
        """Scalar parameters of the QDR module."""
        return self.w_ih.size + self.w_hh.size + self.bias.size


class ApproximateLSTMCell(_ApproximateRecurrentBase):
    """QDR twin of an LSTM cell (gates stacked i, f, g, o)."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        reduced_input: int,
        reduced_hidden: int,
        rng: np.random.Generator | None = None,
        weight_bits: int = 4,
        input_bits: int = 4,
    ):
        super().__init__(
            input_size,
            hidden_size,
            num_gates=4,
            reduced_input=reduced_input,
            reduced_hidden=reduced_hidden,
            rng=rng,
            weight_bits=weight_bits,
            input_bits=input_bits,
        )

    def __repr__(self) -> str:
        return (
            f"ApproximateLSTMCell({self.input_size}, {self.hidden_size}, "
            f"k_x={self.reduced_input}, k_h={self.reduced_hidden})"
        )


class ApproximateGRUCell(_ApproximateRecurrentBase):
    """QDR twin of a GRU cell (gates stacked r, z, n).

    Note: the approximate candidate gate uses the *additive* form
    ``W_in x + W_hn h`` (no reset-gate modulation); the gating interaction
    is second-order for speculation purposes and the distillation target is
    the true pre-activation, so the learned ``W'`` absorbs the average
    effect.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        reduced_input: int,
        reduced_hidden: int,
        rng: np.random.Generator | None = None,
        weight_bits: int = 4,
        input_bits: int = 4,
    ):
        super().__init__(
            input_size,
            hidden_size,
            num_gates=3,
            reduced_input=reduced_input,
            reduced_hidden=reduced_hidden,
            rng=rng,
            weight_bits=weight_bits,
            input_bits=input_bits,
        )

    def __repr__(self) -> str:
        return (
            f"ApproximateGRUCell({self.input_size}, {self.hidden_size}, "
            f"k_x={self.reduced_input}, k_h={self.reduced_hidden})"
        )
