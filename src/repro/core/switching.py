"""Dynamic switching: deciding which activations need accurate results.

Implements the paper's Eq. (2) and Eq. (3):

- For saturating nonlinearities (sigmoid, tanh) an approximate
  pre-activation deep in a saturation region (``|y'| > theta``) is
  insensitive: the switching index is 0 and the approximate result is kept.
- For ReLU, an approximate pre-activation comfortably below threshold
  (``y' < theta``) will be (near) zero after activation: switching index 0.
- All other activations are sensitive (switching index 1) and must be
  recomputed by the accurate module.

The final pre-activation is the mixture ``y = y_acc * m + y_approx * (1-m)``.

Also implements the CNN-specific map plumbing from Section III-C: after the
accurate results pass through ReLU, predicted-effectual neurons that turned
out ineffectual are corrected from 1 to 0, and the corrected OMap becomes
the next layer's input sparsity map (IMap).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "switching_map",
    "mix_outputs",
    "correct_omap_after_relu",
    "imap_from_activations",
    "SWITCHING_RULES",
]

#: Activation names with a defined switching rule (Eq. 3).
SWITCHING_RULES = ("relu", "sigmoid", "tanh")


def switching_map(
    y_approx: np.ndarray,
    activation: str,
    threshold: float,
    guard_band: float = 0.0,
) -> np.ndarray:
    """Compute the binary switching map ``m`` from approximate results.

    Args:
        y_approx: approximate pre-activations ``y'`` (any shape).
        activation: one of ``relu``, ``sigmoid``, ``tanh``.
        threshold: the tuned threshold ``theta`` (must be non-negative for
            saturating rules, where it bounds ``|y'|``).
        guard_band: non-negative hysteresis margin around the threshold.
            Activations within the band of the decision boundary are
            treated as sensitive even though the bare rule would keep the
            approximate result -- the reliability layer widens the band to
            absorb a biased or noisy Speculator (a borderline ``y'`` is
            exactly where a small systematic error flips the decision).
            ``0.0`` reproduces the paper's Eq. (3) rule unchanged.

    Returns:
        ``m`` with the same shape, dtype ``uint8``: 1 = sensitive (Executor
        must compute), 0 = insensitive (approximate result kept).

    Raises:
        ValueError: on an unknown activation name or a negative guard band.
    """
    if guard_band < 0:
        raise ValueError(f"guard_band must be non-negative, got {guard_band}")
    y_approx = np.asarray(y_approx)
    if activation == "relu":
        return (y_approx >= threshold - guard_band).astype(np.uint8)
    if activation in ("sigmoid", "tanh"):
        if threshold < 0:
            raise ValueError(
                f"saturation threshold must be non-negative, got {threshold}"
            )
        return (np.abs(y_approx) <= threshold + guard_band).astype(np.uint8)
    raise ValueError(
        f"no switching rule for activation {activation!r}; "
        f"expected one of {SWITCHING_RULES}"
    )


def mix_outputs(
    y_accurate: np.ndarray, y_approx: np.ndarray, m: np.ndarray
) -> np.ndarray:
    """Assemble the final pre-activation vector (Eq. 2).

    ``y = y_accurate * m + y_approx * (1 - m)``.  ``y_accurate`` only needs
    valid values where ``m == 1``; positions with ``m == 0`` are never read.
    """
    y_accurate = np.asarray(y_accurate, dtype=np.float64)
    y_approx = np.asarray(y_approx, dtype=np.float64)
    if y_accurate.shape != y_approx.shape or y_accurate.shape != m.shape:
        raise ValueError(
            f"shape mismatch: accurate {y_accurate.shape}, "
            f"approx {y_approx.shape}, map {np.asarray(m).shape}"
        )
    mask = np.asarray(m, dtype=bool)
    return np.where(mask, y_accurate, y_approx)


def correct_omap_after_relu(
    omap: np.ndarray, activated: np.ndarray
) -> np.ndarray:
    """Correct predicted-effectual neurons that ReLU zeroed out.

    Paper Section III-C: "if a predicted effectual neuron turns out to be
    ineffectual after ReLU, we will update the switching index of that
    neuron from 1 to 0".  The corrected map is written back to the GLB and
    reused as the next layer's IMap with higher sparsity.

    Args:
        omap: the switching map used for this layer (1 = computed).
        activated: the post-ReLU activations aligned with ``omap``.

    Returns:
        The corrected map: 1 only where the neuron was computed *and* is
        nonzero after ReLU.
    """
    omap = np.asarray(omap)
    activated = np.asarray(activated)
    if omap.shape != activated.shape:
        raise ValueError(f"shape mismatch: {omap.shape} vs {activated.shape}")
    return (omap.astype(bool) & (activated > 0)).astype(np.uint8)


def imap_from_activations(activations: np.ndarray) -> np.ndarray:
    """Input sparsity map: 1 where the input activation is nonzero.

    For CNN layers the ineffectual neurons are set to zero, so the
    (corrected) OMap of layer L doubles as the IMap of layer L+1; this
    helper derives the same map directly from an activation tensor for the
    first layer or for baselines that detect input sparsity online
    (Cnvlutin-style).
    """
    return (np.asarray(activations) != 0).astype(np.uint8)
