"""Offline distillation of approximate modules (paper Eq. 1).

The approximate module is the "student" and the original layer the
"teacher": we minimise the squared error between accurate and approximate
pre-activations over calibration inputs,

    min_{W', b'}  sum_s || (W x + b) - (W' P x + b') ||_2^2 .

With the ternary projection ``P`` fixed, this is linear least squares in
``(W', b')`` and admits a closed-form ridge solution -- which is what the
functions here compute.  Each function takes an accurate module from
:mod:`repro.nn` plus calibration data, fits the paired approximate module
in place, and returns the residual error so callers can monitor
approximation quality.

For RNN cells, calibration pairs are gathered across *all* time steps of
the calibration sequences, matching the paper's "sum the loss of all
time-steps in back-propagation" (Section II-B).

Distillation is quantization-aware by default: the regression features are
the projections of *quantized* inputs, exactly what the Speculator's INT4
datapath will feed the QDR weights at inference time.  Fitting on float
inputs instead produces weights that rely on fine cancellations which INT4
quantization then breaks (a ~10-100x approximation-error difference,
reproduced in the test suite).
"""

from __future__ import annotations

import numpy as np

from repro.core.approx import (
    ApproximateConv2d,
    ApproximateGRUCell,
    ApproximateLinear,
    ApproximateLSTMCell,
)
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear
from repro.nn.recurrent import GRUCell, LSTMCell

__all__ = [
    "ridge_fit",
    "distill_linear",
    "distill_conv2d",
    "distill_lstm_cell",
    "distill_gru_cell",
]


def ridge_fit(
    features: np.ndarray, targets: np.ndarray, ridge: float = 1e-4
) -> tuple[np.ndarray, np.ndarray, float]:
    """Solve the Eq.-(1) least squares with an intercept.

    Args:
        features: design matrix of shape ``(samples, k)`` (projected inputs).
        targets: teacher pre-activations of shape ``(samples, n)``.
        ridge: *relative* Tikhonov regulariser -- scaled by the mean
            feature power so the shrinkage strength is invariant to the
            feature scale and sample count (the intercept row is not
            regularised).  Shrinkage matters beyond conditioning: weights
            fitted with near-zero ridge exploit fine cancellations that
            INT4 input quantization then breaks.

    Returns:
        ``(weight, bias, rmse)`` where ``weight`` has shape ``(n, k)``,
        ``bias`` has shape ``(n,)`` and ``rmse`` is the root-mean-square
        residual of the fit.
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if features.shape[0] != targets.shape[0]:
        raise ValueError(
            f"sample mismatch: {features.shape[0]} features rows vs "
            f"{targets.shape[0]} target rows"
        )
    samples, k = features.shape
    design = np.concatenate([features, np.ones((samples, 1))], axis=1)
    gram = design.T @ design
    feature_power = float(np.mean(features**2)) if features.size else 1.0
    lam = ridge * max(feature_power, 1e-12) * samples
    reg = np.eye(k + 1) * lam
    reg[-1, -1] = 0.0  # do not shrink the intercept
    solution = np.linalg.solve(gram + reg, design.T @ targets)
    weight = solution[:k].T
    bias = solution[k]
    residual = design @ solution - targets
    rmse = float(np.sqrt(np.mean(residual**2)))
    return weight, bias, rmse


def distill_linear(
    accurate: Linear,
    approx: ApproximateLinear,
    calibration_inputs: np.ndarray,
    ridge: float = 1e-4,
    quantization_aware: bool = True,
) -> float:
    """Fit an :class:`ApproximateLinear` to its accurate twin.

    Args:
        accurate: the teacher ``Linear`` layer.
        approx: the student module (its projection stays fixed).
        calibration_inputs: inputs of shape ``(samples, in_features)``.
        ridge: regulariser for :func:`ridge_fit`.

    Returns:
        The fit RMSE on the calibration set (pre-activation units).
    """
    if accurate.in_features != approx.in_features:
        raise ValueError("accurate/approx input dimensions disagree")
    if accurate.out_features != approx.out_features:
        raise ValueError("accurate/approx output dimensions disagree")
    x = np.asarray(calibration_inputs, dtype=np.float64)
    teacher = x @ accurate.weight.data.T
    if accurate.bias is not None:
        teacher = teacher + accurate.bias.data
    reduced = approx.reduce(x, quantized=quantization_aware)
    weight, bias, rmse = ridge_fit(reduced, teacher, ridge)
    approx.weight = weight
    approx.bias = bias
    return rmse


def distill_conv2d(
    accurate: Conv2d,
    approx: ApproximateConv2d,
    calibration_inputs: np.ndarray,
    ridge: float = 1e-4,
    max_samples: int = 20000,
    rng: np.random.Generator | None = None,
    quantization_aware: bool = True,
) -> float:
    """Fit an :class:`ApproximateConv2d` via the im2col lowering.

    Receptive-field columns are extracted from the calibration images and
    subsampled to at most ``max_samples`` rows before the ridge solve.

    Returns:
        The fit RMSE on the (sub)sampled calibration columns.
    """
    if accurate.kernel_size != approx.kernel_size:
        raise ValueError("accurate/approx kernel sizes disagree")
    if accurate.stride != approx.stride or accurate.padding != approx.padding:
        raise ValueError("accurate/approx geometry disagrees")
    x = np.asarray(calibration_inputs, dtype=np.float64)
    cols = F.im2col(x, accurate.kernel_size, accurate.stride, accurate.padding)
    if cols.shape[0] > max_samples:
        rng = rng if rng is not None else np.random.default_rng(0)
        idx = rng.choice(cols.shape[0], size=max_samples, replace=False)
        cols = cols[idx]
    w_mat = accurate.weight.data.reshape(accurate.out_channels, -1)
    teacher = cols @ w_mat.T
    if accurate.bias is not None:
        teacher = teacher + accurate.bias.data
    reduced = approx.inner.reduce(cols, quantized=quantization_aware)
    weight, bias, rmse = ridge_fit(reduced, teacher, ridge)
    approx.inner.weight = weight
    approx.inner.bias = bias
    return rmse


def _collect_recurrent_pairs(cell, sequences: np.ndarray):
    """Run ``cell`` over sequences collecting (x_t, h_{t-1}, pre-activation).

    Works for both LSTM and GRU cells; for the GRU the teacher target for
    the candidate gate includes the true reset-gate modulation.
    """
    sequences = np.asarray(sequences, dtype=np.float64)
    seq_len, batch = sequences.shape[0], sequences.shape[1]
    xs, hs, pres = [], [], []
    if isinstance(cell, LSTMCell):
        h, c = cell.init_state(batch)
        for t in range(seq_len):
            x = sequences[t]
            pre = x @ cell.w_ih.data.T + h @ cell.w_hh.data.T + cell.b.data
            xs.append(x)
            hs.append(h)
            pres.append(pre)
            (h, c), _ = cell(x, (h, c))
        return np.concatenate(xs), np.concatenate(hs), np.concatenate(pres)
    if isinstance(cell, GRUCell):
        h = cell.init_state(batch)
        hidden = cell.hidden_size
        for t in range(seq_len):
            x = sequences[t]
            gi = x @ cell.w_ih.data.T + cell.b_ih.data
            gh = h @ cell.w_hh.data.T + cell.b_hh.data
            r = F.sigmoid(gi[:, :hidden] + gh[:, :hidden])
            pre = np.concatenate(
                [
                    gi[:, :hidden] + gh[:, :hidden],
                    gi[:, hidden : 2 * hidden] + gh[:, hidden : 2 * hidden],
                    gi[:, 2 * hidden :] + r * gh[:, 2 * hidden :],
                ],
                axis=1,
            )
            xs.append(x)
            hs.append(h)
            pres.append(pre)
            h, _ = cell(x, h)
        return np.concatenate(xs), np.concatenate(hs), np.concatenate(pres)
    raise TypeError(f"unsupported cell type {type(cell).__name__}")


def _distill_recurrent(cell, approx, calibration_sequences, ridge,
                       quantization_aware=True):
    from repro.core.approx import _quantize_dequantize

    xs, hs, pres = _collect_recurrent_pairs(cell, calibration_sequences)
    if quantization_aware:
        rx = approx.proj_x.apply(_quantize_dequantize(xs, approx.input_bits))
        rh = approx.proj_h.apply(_quantize_dequantize(hs, approx.input_bits))
    else:
        rx = approx.proj_x.apply(xs)
        rh = approx.proj_h.apply(hs)
    features = np.concatenate([rx, rh], axis=1)
    weight, bias, rmse = ridge_fit(features, pres, ridge)
    kx = approx.reduced_input
    approx.w_ih = weight[:, :kx].copy()
    approx.w_hh = weight[:, kx:].copy()
    approx.bias = bias
    return rmse


def distill_lstm_cell(
    accurate: LSTMCell,
    approx: ApproximateLSTMCell,
    calibration_sequences: np.ndarray,
    ridge: float = 1e-4,
) -> float:
    """Fit an :class:`ApproximateLSTMCell` from calibration sequences.

    Args:
        accurate: teacher LSTM cell.
        approx: student QDR cell.
        calibration_sequences: inputs of shape ``(T, batch, input_size)``;
            the cell is unrolled from a zero state and (x, h) pairs from
            every time step enter the regression.

    Returns:
        The fit RMSE over all gates and time steps.
    """
    if accurate.input_size != approx.input_size:
        raise ValueError("accurate/approx input sizes disagree")
    if accurate.hidden_size != approx.hidden_size:
        raise ValueError("accurate/approx hidden sizes disagree")
    return _distill_recurrent(accurate, approx, calibration_sequences, ridge)


def distill_gru_cell(
    accurate: GRUCell,
    approx: ApproximateGRUCell,
    calibration_sequences: np.ndarray,
    ridge: float = 1e-4,
) -> float:
    """Fit an :class:`ApproximateGRUCell` from calibration sequences.

    The teacher target for the candidate gate includes the true reset-gate
    modulation, so the student's additive form absorbs its average effect.

    Returns:
        The fit RMSE over all gates and time steps.
    """
    if accurate.input_size != approx.input_size:
        raise ValueError("accurate/approx input sizes disagree")
    if accurate.hidden_size != approx.hidden_size:
        raise ValueError("accurate/approx hidden sizes disagree")
    return _distill_recurrent(accurate, approx, calibration_sequences, ridge)
