"""Activation-sensitivity statistics and savings accounting.

Provides the quantities behind the paper's motivation and algorithm-level
evaluation:

- Fig. 2: the fraction of activations living in the insensitive regions of
  ReLU (below threshold) and sigmoid/tanh (saturation).
- Fig. 10: FLOPs reduction and data-access reduction of dual-module
  processing relative to running the accurate module densely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "relu_insensitive_fraction",
    "saturation_insensitive_fraction",
    "insensitive_fraction",
    "LayerSavings",
]


def relu_insensitive_fraction(pre_activations: np.ndarray, threshold: float = 0.0) -> float:
    """Fraction of pre-activations in ReLU's insensitive region (``y < theta``)."""
    y = np.asarray(pre_activations)
    if y.size == 0:
        raise ValueError("empty activation tensor")
    return float(np.mean(y < threshold))


def saturation_insensitive_fraction(
    pre_activations: np.ndarray, threshold: float
) -> float:
    """Fraction of pre-activations in sigmoid/tanh saturation (``|y| > theta``)."""
    if threshold < 0:
        raise ValueError(f"saturation threshold must be non-negative, got {threshold}")
    y = np.asarray(pre_activations)
    if y.size == 0:
        raise ValueError("empty activation tensor")
    return float(np.mean(np.abs(y) > threshold))


def insensitive_fraction(
    pre_activations: np.ndarray, activation: str, threshold: float
) -> float:
    """Dispatch to the per-activation insensitive-region fraction (Fig. 2)."""
    if activation == "relu":
        return relu_insensitive_fraction(pre_activations, threshold)
    if activation in ("sigmoid", "tanh"):
        return saturation_insensitive_fraction(pre_activations, threshold)
    raise ValueError(f"no insensitive-region rule for activation {activation!r}")


@dataclass
class LayerSavings:
    """Operation and data-access accounting for one dual-module layer run.

    All counts are totals over the processed batch.  ``*_dense`` fields are
    what single-module (accurate-only) execution would have cost; the
    ``speculation_*`` fields are the overhead the approximate module adds.

    Attributes:
        dense_macs: accurate-module MACs without any skipping.
        executed_macs: accurate-module MACs actually executed (sensitive
            outputs only, input sparsity applied when enabled).
        speculation_macs: low-precision MACs in the approximate module.
        speculation_additions: projection adder-tree additions.
        dense_weight_reads: accurate weight elements read without skipping.
        weight_reads: accurate weight elements actually read.
        speculation_weight_reads: QDR weight elements read.
        outputs_total: number of output activations produced.
        outputs_sensitive: outputs computed by the accurate module (m == 1).
    """

    dense_macs: int = 0
    executed_macs: int = 0
    speculation_macs: int = 0
    speculation_additions: int = 0
    dense_weight_reads: int = 0
    weight_reads: int = 0
    speculation_weight_reads: int = 0
    outputs_total: int = 0
    outputs_sensitive: int = 0

    @property
    def sensitive_fraction(self) -> float:
        """Fraction of outputs the Executor had to compute."""
        if self.outputs_total == 0:
            return 0.0
        return self.outputs_sensitive / self.outputs_total

    @property
    def mac_reduction(self) -> float:
        """Dense MACs over executed MACs, ignoring speculation overhead."""
        if self.executed_macs == 0:
            return float("inf")
        return self.dense_macs / self.executed_macs

    @property
    def flops_reduction(self) -> float:
        """Paper Fig. 10 metric: dense ops over total dual-module ops.

        Speculation additions are charged at half the cost of a MAC (a MAC
        is one multiply plus one add).
        """
        total = (
            self.executed_macs
            + self.speculation_macs
            + 0.5 * self.speculation_additions
        )
        if total == 0:
            return float("inf")
        return self.dense_macs / total

    @property
    def weight_access_reduction(self) -> float:
        """Paper Fig. 10c/d metric: dense weight reads over actual reads."""
        total = self.weight_reads + self.speculation_weight_reads
        if total == 0:
            return float("inf")
        return self.dense_weight_reads / total

    def merge(self, other: "LayerSavings") -> "LayerSavings":
        """Return the element-wise sum of two accounts (layer/network roll-up)."""
        return LayerSavings(
            dense_macs=self.dense_macs + other.dense_macs,
            executed_macs=self.executed_macs + other.executed_macs,
            speculation_macs=self.speculation_macs + other.speculation_macs,
            speculation_additions=(
                self.speculation_additions + other.speculation_additions
            ),
            dense_weight_reads=self.dense_weight_reads + other.dense_weight_reads,
            weight_reads=self.weight_reads + other.weight_reads,
            speculation_weight_reads=(
                self.speculation_weight_reads + other.speculation_weight_reads
            ),
            outputs_total=self.outputs_total + other.outputs_total,
            outputs_sensitive=self.outputs_sensitive + other.outputs_sensitive,
        )
