"""Threshold tuning for dynamic switching.

The switching thresholds ``theta`` are "obtained by tuning with the
fine-tuning phase" (paper Section II-A): after distillation, a calibration
pass sweeps candidate thresholds and picks, per layer, the most aggressive
threshold whose quality degradation stays within a budget.  Two utilities
are provided:

- :func:`tune_threshold_for_fraction` -- pick the threshold that marks a
  target fraction of activations insensitive (a direct quantile; useful
  for controlled sweeps and for the Fig. 2/Fig. 13 studies).
- :class:`ThresholdTuner` -- budgeted tuning: sweep thresholds, evaluate a
  caller-supplied quality function, and keep the cheapest configuration
  within ``max_quality_loss``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "tune_threshold_for_fraction",
    "suggest_guard_band",
    "ThresholdTuner",
    "TuningResult",
    "tune_dualized_classifier",
    "allocate_layer_fractions",
]


def tune_threshold_for_fraction(
    approx_pre_activations: np.ndarray,
    activation: str,
    target_insensitive_fraction: float,
) -> float:
    """Threshold marking ``target_insensitive_fraction`` of outputs insensitive.

    For ReLU the insensitive set is ``{y' < theta}``, so the threshold is
    the corresponding lower quantile of the approximate pre-activations.
    For sigmoid/tanh the insensitive set is ``{|y'| > theta}``, so the
    threshold is the matching upper quantile of ``|y'|``.

    Args:
        approx_pre_activations: calibration outputs of the approximate
            module (any shape).
        activation: ``relu``, ``sigmoid`` or ``tanh``.
        target_insensitive_fraction: desired fraction in ``[0, 1]``.

    Returns:
        The threshold ``theta``.
    """
    if not 0.0 <= target_insensitive_fraction <= 1.0:
        raise ValueError(
            f"fraction must be in [0, 1], got {target_insensitive_fraction}"
        )
    y = np.asarray(approx_pre_activations, dtype=np.float64).reshape(-1)
    if y.size == 0:
        raise ValueError("empty calibration tensor")
    if activation == "relu":
        return float(np.quantile(y, target_insensitive_fraction))
    if activation in ("sigmoid", "tanh"):
        return float(np.quantile(np.abs(y), 1.0 - target_insensitive_fraction))
    raise ValueError(f"no threshold rule for activation {activation!r}")


def suggest_guard_band(
    approx_pre_activations: np.ndarray,
    activation: str,
    threshold: float,
    extra_sensitive_fraction: float,
) -> float:
    """Guard-band margin that routes an extra slice of borderline
    activations to the accurate module.

    The reliability layer (:mod:`repro.reliability`) widens the switching
    threshold by a hysteresis margin so that a biased Speculator cannot
    silently flip borderline decisions.  This helper sizes that margin from
    calibration data: it returns the smallest ``guard_band`` such that
    :func:`repro.core.switching.switching_map` with that band marks at
    least ``extra_sensitive_fraction`` more of the calibration activations
    sensitive than the bare rule does.

    Args:
        approx_pre_activations: calibration outputs of the approximate
            module (any shape).
        activation: ``relu``, ``sigmoid`` or ``tanh``.
        threshold: the tuned switching threshold ``theta``.
        extra_sensitive_fraction: target additional sensitive fraction in
            ``[0, 1]``; ``0`` returns a zero band.

    Returns:
        The non-negative guard-band margin.
    """
    if not 0.0 <= extra_sensitive_fraction <= 1.0:
        raise ValueError(
            f"fraction must be in [0, 1], got {extra_sensitive_fraction}"
        )
    y = np.asarray(approx_pre_activations, dtype=np.float64).reshape(-1)
    if y.size == 0:
        raise ValueError("empty calibration tensor")
    if extra_sensitive_fraction == 0.0:
        return 0.0
    if activation == "relu":
        # borderline set: y' just below theta; the band must reach down to
        # the matching lower quantile of the currently-insensitive mass
        insensitive = y[y < threshold]
        if insensitive.size == 0:
            return 0.0
        take = min(1.0, extra_sensitive_fraction * y.size / insensitive.size)
        cut = float(np.quantile(insensitive, 1.0 - take))
        return max(0.0, threshold - cut)
    if activation in ("sigmoid", "tanh"):
        mag = np.abs(y)
        insensitive = mag[mag > threshold]
        if insensitive.size == 0:
            return 0.0
        take = min(1.0, extra_sensitive_fraction * y.size / insensitive.size)
        cut = float(np.quantile(insensitive, take))
        return max(0.0, cut - threshold)
    raise ValueError(f"no guard-band rule for activation {activation!r}")


@dataclass
class TuningResult:
    """Outcome of a budgeted threshold sweep.

    Attributes:
        threshold: the selected threshold.
        quality: quality metric at the selected threshold.
        quality_loss: degradation versus the dense reference.
        insensitive_fraction: fraction of outputs switched to approximate.
        swept: list of ``(threshold, quality, insensitive_fraction)`` for
            every candidate evaluated, in sweep order.
    """

    threshold: float
    quality: float
    quality_loss: float
    insensitive_fraction: float
    swept: list[tuple[float, float, float]]


class ThresholdTuner:
    """Budgeted threshold search over a caller-supplied quality function.

    Args:
        quality_fn: maps a threshold to ``(quality, insensitive_fraction)``.
            Quality must be "higher is better" (accuracy, negative
            perplexity, BLEU-analogue score, ...).
        reference_quality: quality of dense (accurate-only) execution.
        max_quality_loss: tolerated degradation, e.g. 0.01 for the paper's
            MLPerf-style 1% budget.
    """

    def __init__(
        self,
        quality_fn: Callable[[float], tuple[float, float]],
        reference_quality: float,
        max_quality_loss: float,
    ):
        if max_quality_loss < 0:
            raise ValueError(f"budget must be non-negative, got {max_quality_loss}")
        self.quality_fn = quality_fn
        self.reference_quality = reference_quality
        self.max_quality_loss = max_quality_loss

    def sweep(self, candidates: Sequence[float]) -> TuningResult:
        """Evaluate candidates and keep the most aggressive one in budget.

        "Most aggressive" means the largest insensitive fraction; ties are
        broken toward the earlier candidate.  If no candidate satisfies the
        budget the least-degrading candidate is returned (its
        ``quality_loss`` will exceed the budget -- callers should check).

        Args:
            candidates: thresholds to try, any order.

        Returns:
            A :class:`TuningResult`.
        """
        if not candidates:
            raise ValueError("no candidate thresholds supplied")
        swept: list[tuple[float, float, float]] = []
        best: tuple[float, float, float] | None = None
        fallback: tuple[float, float, float] | None = None
        for theta in candidates:
            quality, frac = self.quality_fn(theta)
            swept.append((float(theta), float(quality), float(frac)))
            loss = self.reference_quality - quality
            if fallback is None or quality > fallback[1]:
                fallback = (float(theta), float(quality), float(frac))
            if loss <= self.max_quality_loss:
                if best is None or frac > best[2]:
                    best = (float(theta), float(quality), float(frac))
        chosen = best if best is not None else fallback
        assert chosen is not None
        theta, quality, frac = chosen
        return TuningResult(
            threshold=theta,
            quality=quality,
            quality_loss=self.reference_quality - quality,
            insensitive_fraction=frac,
            swept=swept,
        )


def tune_dualized_classifier(
    dual,
    calibration_images: np.ndarray,
    eval_images: np.ndarray,
    eval_labels: np.ndarray,
    max_accuracy_loss: float = 0.01,
    fractions: Sequence[float] = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95),
) -> TuningResult:
    """End-to-end budgeted tuning of a dualized CNN (the MLPerf-style flow).

    Sweeps target insensitive fractions, sets per-layer thresholds via the
    calibration quantiles, evaluates top-1 accuracy, and keeps the most
    aggressive setting whose loss stays within ``max_accuracy_loss`` --
    the paper's "1% top-1 accuracy loss according to MLPerf" operating
    point (Section V-A).  The dual network is left configured at the
    selected fractions.

    Args:
        dual: a built :class:`repro.models.dualize.DualizedCNN`.
        calibration_images: images for threshold-quantile calibration.
        eval_images / eval_labels: held-out evaluation batch.
        max_accuracy_loss: tolerated top-1 degradation (default 1%).
        fractions: candidate insensitive fractions, swept in order.

    Returns:
        A :class:`TuningResult`; ``threshold`` holds the chosen *fraction*.
    """
    from repro.nn.losses import topk_accuracy

    # reference = accurate-only execution: fraction 0 keeps everything
    dual.set_thresholds_by_fraction(0.0, calibration_images)
    ref_logits, _ = dual.forward(eval_images)
    reference = topk_accuracy(ref_logits, eval_labels, k=1)

    def quality_fn(fraction: float) -> tuple[float, float]:
        dual.set_thresholds_by_fraction(fraction, calibration_images)
        logits, savings = dual.forward(eval_images)
        accuracy = topk_accuracy(logits, eval_labels, k=1)
        return accuracy, 1.0 - savings.sensitive_fraction

    tuner = ThresholdTuner(quality_fn, reference, max_accuracy_loss)
    result = tuner.sweep(list(fractions))
    # leave the dual network at the selected operating point
    dual.set_thresholds_by_fraction(result.threshold, calibration_images)
    return result


def allocate_layer_fractions(
    dual,
    calibration_images: np.ndarray,
    eval_images: np.ndarray,
    eval_labels: np.ndarray,
    max_accuracy_loss: float = 0.01,
    levels: Sequence[float] = (0.3, 0.5, 0.7, 0.85, 0.95),
) -> list[float]:
    """Greedy per-layer aggressiveness allocation under a quality budget.

    The paper tunes switching thresholds per layer: layers differ in how
    much approximation they tolerate.  Starting with every layer at the
    mildest level, this greedily promotes one layer at a time -- always
    the promotion that stays within the accuracy budget and removes the
    most executed MACs -- until no promotion fits.  Upstream thresholds
    are recalibrated after every change (switching sparsifies the inputs
    downstream layers see).

    Args:
        dual: a built :class:`repro.models.dualize.DualizedCNN`.
        calibration_images: images for threshold-quantile calibration.
        eval_images / eval_labels: held-out evaluation batch.
        max_accuracy_loss: tolerated top-1 degradation vs level-0.
        levels: increasing insensitive-fraction levels.

    Returns:
        The selected per-layer fractions (the dual network is left
        configured at them).
    """
    from repro.nn.losses import topk_accuracy

    num_layers = len(dual.slots)
    assignment = [0] * num_layers  # index into levels, per layer

    def configure_and_eval(assign):
        dual.set_thresholds_by_fraction(
            [levels[a] for a in assign], calibration_images
        )
        logits, savings = dual.forward(eval_images)
        return topk_accuracy(logits, eval_labels, k=1), savings.executed_macs

    reference, _ = configure_and_eval(assignment)
    improved = True
    while improved:
        improved = False
        best = None  # (macs, layer, accuracy)
        for layer in range(num_layers):
            if assignment[layer] + 1 >= len(levels):
                continue
            trial = list(assignment)
            trial[layer] += 1
            accuracy, macs = configure_and_eval(trial)
            if reference - accuracy <= max_accuracy_loss:
                if best is None or macs < best[0]:
                    best = (macs, layer, accuracy)
        if best is not None:
            assignment[best[1]] += 1
            improved = True
    fractions = [levels[a] for a in assignment]
    dual.set_thresholds_by_fraction(fractions, calibration_images)
    return fractions
