"""Memoized buffers for the offline dual-module tooling.

The threshold-tuning flows (:mod:`repro.core.thresholds`,
:meth:`repro.models.dualize.DualizedCNN.set_thresholds_by_fraction`) sweep
many candidate operating points over the *same* calibration and evaluation
batches.  Each sweep step re-runs the im2col lowering, the switching-map
comparison and the threshold quantile on byte-identical inputs.  All three
are pure functions of their array contents, so this module memoizes them
behind content fingerprints:

- :func:`im2col_cached` -- the im2col buffer of a conv input, keyed on the
  input fingerprint and the conv geometry.
- :func:`switching_map_cached` -- the OMap of a layer, keyed on
  ``(layer, fingerprint, threshold)`` (plus activation and guard band).
- :func:`tune_threshold_cached` -- the tuned quantile threshold, keyed on
  ``(layer, fingerprint, fraction)``.

Because keys are content fingerprints (BLAKE2b over dtype, shape and raw
bytes), a hit returns exactly what the underlying function would have
computed -- caching never changes numerics, it only skips recomputation.
Cached arrays are stored read-only and shared between hits; callers must
treat them as immutable (mutation raises ``ValueError``).

Two tiers back the memo:

- an in-process bounded LRU (:class:`MemoCache`), always consulted first;
- an on-disk content-fingerprint store (:class:`PersistentCache`) shared
  by every process on the machine -- campaign workers forked by
  :mod:`repro.parallel` and repeated CLI runs alike.  Disk keys contain
  *only* content fingerprints and value parameters (never the in-process
  ``layer`` partition tokens, which are not stable across processes), so
  a disk hit is exactly the value any process would have computed.
  Entries live under ``.duet-cache/v1`` (override the root with the
  ``DUET_CACHE_DIR`` environment variable); the ``v1`` segment is the
  fingerprint-schema version -- bumping it orphans old entries instead of
  misreading them.  Writes are atomic (temp file + ``os.replace``) and
  the store is size-bounded with oldest-first eviction.

Caches are bounded LRU and enabled by default; ``set_cache_enabled(False)``
restores the uncached behaviour, e.g. for microbenchmarking the raw
kernels.  The disk tier alone can be disabled with
``set_disk_cache_enabled(False)`` or ``DUET_CACHE_DISK=0``.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from pathlib import Path
from typing import Hashable

import numpy as np

__all__ = [
    "array_fingerprint",
    "MemoCache",
    "PersistentCache",
    "im2col_cached",
    "switching_map_cached",
    "tune_threshold_cached",
    "set_cache_enabled",
    "caches_enabled",
    "set_disk_cache_enabled",
    "disk_cache_enabled",
    "clear_caches",
    "cache_stats",
    "IM2COL_CACHE",
    "SWITCHING_CACHE",
    "THRESHOLD_CACHE",
    "DISK_CACHE",
]

#: version segment of the on-disk store; bump when the fingerprint or
#: file format changes so stale entries are orphaned, never misread.
DISK_SCHEMA_VERSION = "v1"

#: environment variable overriding the on-disk store's root directory.
CACHE_DIR_ENV = "DUET_CACHE_DIR"

#: environment variable disabling the disk tier ("0", "off", "false").
CACHE_DISK_ENV = "DUET_CACHE_DISK"


def array_fingerprint(x: np.ndarray) -> str:
    """Content fingerprint of an array: BLAKE2b over dtype, shape, bytes.

    Hashing runs at memory bandwidth -- orders of magnitude cheaper than
    the im2col / quantile / comparison work it stands in for -- and two
    arrays share a fingerprint iff they are byte-identical with the same
    dtype and shape.
    """
    x = np.ascontiguousarray(x)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(x.dtype).encode())
    digest.update(repr(x.shape).encode())
    digest.update(x.view(np.uint8).data if x.size else b"")
    return digest.hexdigest()


class MemoCache:
    """A bounded LRU memo with hit/miss/evict counters.

    Attributes:
        name: label used in :func:`cache_stats`.
        capacity: maximum number of entries; least-recently-used entries
            are evicted first.
        hits / misses / evictions: counters since the last :meth:`clear`.
    """

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        """Return the cached value or ``None``; refreshes LRU order."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert a value, evicting the least-recently-used on overflow."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, int]:
        """Counter snapshot: ``{entries, capacity, hits, misses, evictions}``."""
        return {
            "entries": len(self),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class PersistentCache:
    """On-disk content-fingerprint store shared across processes.

    Values are numpy arrays saved with :func:`numpy.save` (pickling
    disabled) under ``root/<version>/<key digest>.npy``.  Keys must be
    built from content fingerprints and value parameters only -- never
    from process-local tokens -- so any process reading a hit gets
    exactly what it would have computed.  Writes go to a pid-unique
    temporary file first and land via ``os.replace``, so concurrent
    workers can race on the same key without ever exposing a torn file
    (last writer wins with an identical payload).

    Attributes:
        max_bytes: store size bound; oldest entries (by mtime) are
            evicted after a put pushes the total over it.
        hits / misses / evictions: process-local counters.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        max_bytes: int = 256 * 1024 * 1024,
        version: str = DISK_SCHEMA_VERSION,
    ):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self._root = Path(root) if root is not None else None
        self.max_bytes = max_bytes
        self.version = version
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def directory(self) -> Path:
        """The versioned store directory (honours ``DUET_CACHE_DIR``)."""
        root = self._root
        if root is None:
            root = Path(os.environ.get(CACHE_DIR_ENV) or ".duet-cache")
        return root / self.version

    @staticmethod
    def key_digest(*parts) -> str:
        """Stable digest of a key tuple (reprs hashed with BLAKE2b)."""
        digest = hashlib.blake2b(digest_size=16)
        for part in parts:
            digest.update(repr(part).encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npy"

    def get_array(self, key: str) -> np.ndarray | None:
        """Load the array stored under ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            value = np.load(path, allow_pickle=False)
        except (FileNotFoundError, OSError, ValueError):
            # missing, torn by an unclean shutdown, or unreadable: treat
            # every failure as a miss and let the caller recompute
            self.misses += 1
            return None
        self.hits += 1
        try:  # freshen mtime so the LRU-ish eviction keeps hot entries
            os.utime(path)
        except OSError:
            pass
        return value

    def put_array(self, key: str, value: np.ndarray) -> None:
        """Atomically store ``value`` under ``key``; best-effort on I/O."""
        directory = self.directory
        try:
            directory.mkdir(parents=True, exist_ok=True)
            tmp = directory / f"{key}.{os.getpid()}.tmp.npy"
            with open(tmp, "wb") as handle:
                np.save(handle, np.ascontiguousarray(value), allow_pickle=False)
            os.replace(tmp, self._path(key))
        except OSError:
            return  # a read-only or full disk must never fail the caller
        self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Drop oldest entries until the store fits ``max_bytes``."""
        try:
            entries = [
                (path.stat().st_mtime, path.stat().st_size, path)
                for path in self.directory.glob("*.npy")
                if ".tmp." not in path.name
            ]
        except OSError:
            return
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(entries):
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            total -= size
            if total <= self.max_bytes:
                return

    def stats(self) -> dict[str, int]:
        """``{entries, bytes, hits, misses, evictions}`` snapshot."""
        entries = 0
        size = 0
        try:
            for path in self.directory.glob("*.npy"):
                if ".tmp." in path.name:
                    continue
                entries += 1
                size += path.stat().st_size
        except OSError:
            pass
        return {
            "entries": entries,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        """Remove every stored entry and zero the counters."""
        try:
            for path in self.directory.glob("*.npy"):
                try:
                    path.unlink()
                except OSError:
                    continue
        except OSError:
            pass
        self.hits = 0
        self.misses = 0
        self.evictions = 0


#: Global caches.  im2col buffers are large (a few MB per calibration
#: batch), so that cache is kept small; maps and thresholds are tiny.
IM2COL_CACHE = MemoCache("im2col", capacity=32)
SWITCHING_CACHE = MemoCache("switching_map", capacity=256)
THRESHOLD_CACHE = MemoCache("threshold", capacity=4096)

#: The shared disk tier behind all three memo functions.
DISK_CACHE = PersistentCache()

_ALL_CACHES = (IM2COL_CACHE, SWITCHING_CACHE, THRESHOLD_CACHE)
_enabled = True
_disk_enabled: bool | None = None  # None = consult the environment


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable or disable the memo caches (default: enabled)."""
    global _enabled
    _enabled = bool(enabled)


def caches_enabled() -> bool:
    """Whether the memo caches are currently active."""
    return _enabled


def set_disk_cache_enabled(enabled: bool | None) -> None:
    """Enable/disable the disk tier (``None`` defers to the environment)."""
    global _disk_enabled
    _disk_enabled = enabled if enabled is None else bool(enabled)


def disk_cache_enabled() -> bool:
    """Whether the disk tier is active (memo caches must be on too)."""
    if not _enabled:
        return False
    if _disk_enabled is not None:
        return _disk_enabled
    flag = os.environ.get(CACHE_DISK_ENV, "1").strip().lower()
    return flag not in ("0", "off", "false", "no")


def clear_caches() -> None:
    """Empty every in-process cache and reset its counters.

    The disk tier is deliberately left alone -- it is shared machine
    state; call ``DISK_CACHE.clear()`` to wipe it explicitly.
    """
    for cache in _ALL_CACHES:
        cache.clear()


def cache_stats() -> dict[str, dict[str, int]]:
    """Per-cache counter snapshot (for diagnostics and bench output).

    In-process caches report ``{entries, capacity, hits, misses,
    evictions}``; the ``disk`` entry reports ``{entries, bytes, hits,
    misses, evictions}`` for the persistent tier.
    """
    stats = {cache.name: cache.stats() for cache in _ALL_CACHES}
    stats["disk"] = DISK_CACHE.stats()
    return stats


def _freeze(x: np.ndarray) -> np.ndarray:
    """Mark an array read-only so shared cache hits cannot be mutated."""
    x.flags.writeable = False
    return x


def _disk_get(tag: str, *parts) -> np.ndarray | None:
    if not disk_cache_enabled():
        return None
    return DISK_CACHE.get_array(PersistentCache.key_digest(tag, *parts))


def _disk_put(value: np.ndarray, tag: str, *parts) -> None:
    if not disk_cache_enabled():
        return
    DISK_CACHE.put_array(PersistentCache.key_digest(tag, *parts), value)


def im2col_cached(
    x: np.ndarray,
    kernel_size: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Memoized :func:`repro.nn.functional.im2col`.

    Keyed on the input fingerprint plus the conv geometry; returns a
    shared read-only ``(N * H' * W', C * kh * kw)`` buffer.  Backed by
    the disk tier: a buffer lowered by any worker process is a read on
    every other.
    """
    from repro.nn.functional import im2col

    if not _enabled:
        return im2col(x, kernel_size, stride, padding)
    geometry = (tuple(kernel_size), int(stride), int(padding))
    fingerprint = array_fingerprint(x)
    key = (fingerprint, *geometry)
    cols = IM2COL_CACHE.get(key)
    if cols is None:
        cols = _disk_get("im2col", fingerprint, geometry)
        if cols is None:
            cols = im2col(x, kernel_size, stride, padding)
            _disk_put(cols, "im2col", fingerprint, geometry)
        cols = _freeze(cols)
        IM2COL_CACHE.put(key, cols)
    return cols


def switching_map_cached(
    y_approx: np.ndarray,
    activation: str,
    threshold: float,
    guard_band: float = 0.0,
    layer: Hashable = None,
) -> np.ndarray:
    """Memoized :func:`repro.core.switching.switching_map`.

    Keyed on ``(layer, fingerprint(y_approx), activation, threshold,
    guard_band)``.  The ``layer`` token only partitions the in-process
    cache (useful so one layer's sweep cannot evict another's working
    set); correctness comes from the fingerprint, which fully determines
    the map -- so the disk tier drops the token and shares entries
    across layers and processes alike.  Returns a shared read-only map.
    """
    from repro.core.switching import switching_map

    if not _enabled:
        return switching_map(y_approx, activation, threshold, guard_band)
    fingerprint = array_fingerprint(y_approx)
    params = (activation, float(threshold), float(guard_band))
    key = (layer, fingerprint, *params)
    omap = SWITCHING_CACHE.get(key)
    if omap is None:
        omap = _disk_get("switching_map", fingerprint, params)
        if omap is None:
            omap = switching_map(y_approx, activation, threshold, guard_band)
            _disk_put(omap, "switching_map", fingerprint, params)
        omap = _freeze(omap)
        SWITCHING_CACHE.put(key, omap)
    return omap


def tune_threshold_cached(
    approx_pre_activations: np.ndarray,
    activation: str,
    target_insensitive_fraction: float,
    layer: Hashable = None,
) -> float:
    """Memoized :func:`repro.core.thresholds.tune_threshold_for_fraction`.

    Keyed on ``(layer, fingerprint(pre-activations), activation,
    fraction)``; the greedy per-layer allocation in
    :func:`repro.core.thresholds.allocate_layer_fractions` re-tunes
    upstream layers with unchanged inputs on every trial, which this
    turns into dictionary lookups.  Tuned values persist on disk as 0-d
    float64 arrays, shared across worker processes.
    """
    from repro.core.thresholds import tune_threshold_for_fraction

    if not _enabled:
        return tune_threshold_for_fraction(
            approx_pre_activations, activation, target_insensitive_fraction
        )
    fingerprint = array_fingerprint(approx_pre_activations)
    params = (activation, float(target_insensitive_fraction))
    key = (layer, fingerprint, *params)
    theta = THRESHOLD_CACHE.get(key)
    if theta is None:
        stored = _disk_get("threshold", fingerprint, params)
        if stored is not None and stored.size == 1:
            # ascontiguousarray promotes 0-d saves to shape (1,): ravel
            # before converting so either layout reads back as a float
            theta = float(stored.ravel()[0])
        else:
            theta = tune_threshold_for_fraction(
                approx_pre_activations, activation, target_insensitive_fraction
            )
            _disk_put(np.float64(theta), "threshold", fingerprint, params)
        THRESHOLD_CACHE.put(key, theta)
    return theta
