"""Memoized buffers for the offline dual-module tooling.

The threshold-tuning flows (:mod:`repro.core.thresholds`,
:meth:`repro.models.dualize.DualizedCNN.set_thresholds_by_fraction`) sweep
many candidate operating points over the *same* calibration and evaluation
batches.  Each sweep step re-runs the im2col lowering, the switching-map
comparison and the threshold quantile on byte-identical inputs.  All three
are pure functions of their array contents, so this module memoizes them
behind content fingerprints:

- :func:`im2col_cached` -- the im2col buffer of a conv input, keyed on the
  input fingerprint and the conv geometry.
- :func:`switching_map_cached` -- the OMap of a layer, keyed on
  ``(layer, fingerprint, threshold)`` (plus activation and guard band).
- :func:`tune_threshold_cached` -- the tuned quantile threshold, keyed on
  ``(layer, fingerprint, fraction)``.

Because keys are content fingerprints (BLAKE2b over dtype, shape and raw
bytes), a hit returns exactly what the underlying function would have
computed -- caching never changes numerics, it only skips recomputation.
Cached arrays are stored read-only and shared between hits; callers must
treat them as immutable (mutation raises ``ValueError``).

Caches are bounded LRU and enabled by default; ``set_cache_enabled(False)``
restores the uncached behaviour, e.g. for microbenchmarking the raw
kernels.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Hashable

import numpy as np

__all__ = [
    "array_fingerprint",
    "MemoCache",
    "im2col_cached",
    "switching_map_cached",
    "tune_threshold_cached",
    "set_cache_enabled",
    "caches_enabled",
    "clear_caches",
    "cache_stats",
    "IM2COL_CACHE",
    "SWITCHING_CACHE",
    "THRESHOLD_CACHE",
]


def array_fingerprint(x: np.ndarray) -> str:
    """Content fingerprint of an array: BLAKE2b over dtype, shape, bytes.

    Hashing runs at memory bandwidth -- orders of magnitude cheaper than
    the im2col / quantile / comparison work it stands in for -- and two
    arrays share a fingerprint iff they are byte-identical with the same
    dtype and shape.
    """
    x = np.ascontiguousarray(x)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(x.dtype).encode())
    digest.update(repr(x.shape).encode())
    digest.update(x.view(np.uint8).data if x.size else b"")
    return digest.hexdigest()


class MemoCache:
    """A bounded LRU memo with hit/miss counters.

    Attributes:
        name: label used in :func:`cache_stats`.
        capacity: maximum number of entries; least-recently-used entries
            are evicted first.
        hits / misses: lookup counters since the last :meth:`clear`.
    """

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        """Return the cached value or ``None``; refreshes LRU order."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert a value, evicting the least-recently-used on overflow."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Global caches.  im2col buffers are large (a few MB per calibration
#: batch), so that cache is kept small; maps and thresholds are tiny.
IM2COL_CACHE = MemoCache("im2col", capacity=32)
SWITCHING_CACHE = MemoCache("switching_map", capacity=256)
THRESHOLD_CACHE = MemoCache("threshold", capacity=4096)

_ALL_CACHES = (IM2COL_CACHE, SWITCHING_CACHE, THRESHOLD_CACHE)
_enabled = True


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable or disable the memo caches (default: enabled)."""
    global _enabled
    _enabled = bool(enabled)


def caches_enabled() -> bool:
    """Whether the memo caches are currently active."""
    return _enabled


def clear_caches() -> None:
    """Empty every cache and reset its counters."""
    for cache in _ALL_CACHES:
        cache.clear()


def cache_stats() -> dict[str, dict[str, int]]:
    """Per-cache ``{entries, hits, misses}`` snapshot (for diagnostics)."""
    return {
        cache.name: {
            "entries": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
        }
        for cache in _ALL_CACHES
    }


def _freeze(x: np.ndarray) -> np.ndarray:
    """Mark an array read-only so shared cache hits cannot be mutated."""
    x.flags.writeable = False
    return x


def im2col_cached(
    x: np.ndarray,
    kernel_size: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Memoized :func:`repro.nn.functional.im2col`.

    Keyed on the input fingerprint plus the conv geometry; returns a
    shared read-only ``(N * H' * W', C * kh * kw)`` buffer.
    """
    from repro.nn.functional import im2col

    if not _enabled:
        return im2col(x, kernel_size, stride, padding)
    key = (array_fingerprint(x), tuple(kernel_size), int(stride), int(padding))
    cols = IM2COL_CACHE.get(key)
    if cols is None:
        cols = _freeze(im2col(x, kernel_size, stride, padding))
        IM2COL_CACHE.put(key, cols)
    return cols


def switching_map_cached(
    y_approx: np.ndarray,
    activation: str,
    threshold: float,
    guard_band: float = 0.0,
    layer: Hashable = None,
) -> np.ndarray:
    """Memoized :func:`repro.core.switching.switching_map`.

    Keyed on ``(layer, fingerprint(y_approx), activation, threshold,
    guard_band)``.  The ``layer`` token only partitions the cache (useful
    so one layer's sweep cannot evict another's working set); correctness
    comes from the fingerprint, which fully determines the map.  Returns a
    shared read-only map.
    """
    from repro.core.switching import switching_map

    if not _enabled:
        return switching_map(y_approx, activation, threshold, guard_band)
    key = (
        layer,
        array_fingerprint(y_approx),
        activation,
        float(threshold),
        float(guard_band),
    )
    omap = SWITCHING_CACHE.get(key)
    if omap is None:
        omap = _freeze(switching_map(y_approx, activation, threshold, guard_band))
        SWITCHING_CACHE.put(key, omap)
    return omap


def tune_threshold_cached(
    approx_pre_activations: np.ndarray,
    activation: str,
    target_insensitive_fraction: float,
    layer: Hashable = None,
) -> float:
    """Memoized :func:`repro.core.thresholds.tune_threshold_for_fraction`.

    Keyed on ``(layer, fingerprint(pre-activations), activation,
    fraction)``; the greedy per-layer allocation in
    :func:`repro.core.thresholds.allocate_layer_fractions` re-tunes
    upstream layers with unchanged inputs on every trial, which this
    turns into dictionary lookups.
    """
    from repro.core.thresholds import tune_threshold_for_fraction

    if not _enabled:
        return tune_threshold_for_fraction(
            approx_pre_activations, activation, target_insensitive_fraction
        )
    key = (
        layer,
        array_fingerprint(approx_pre_activations),
        activation,
        float(target_insensitive_fraction),
    )
    theta = THRESHOLD_CACHE.get(key)
    if theta is None:
        theta = tune_threshold_for_fraction(
            approx_pre_activations, activation, target_insensitive_fraction
        )
        THRESHOLD_CACHE.put(key, theta)
    return theta
