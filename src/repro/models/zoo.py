"""Shape-exact model zoo: the benchmark networks of the paper's evaluation.

Builds :class:`~repro.models.layer_spec.ModelSpec` descriptions for the
models the paper evaluates (Section V-A): AlexNet, ResNet18, ResNet50 on
ImageNet shapes; VGG16 (used in Fig. 12b); 2-layer LSTM and GRU language
models on PTB shapes; and GNMT encoder-decoder shapes for WMT16.

Only shapes matter for the architecture study, so these functions produce
layer specs, not trained networks (see :mod:`repro.models.proxies` for the
trainable counterparts used in accuracy studies).
"""

from __future__ import annotations

from repro.models.layer_spec import ConvSpec, FCSpec, ModelSpec, RNNSpec

__all__ = [
    "alexnet",
    "vgg16",
    "resnet18",
    "resnet50",
    "lstm_lm",
    "gru_lm",
    "gnmt",
]


def alexnet() -> ModelSpec:
    """AlexNet CONV/FC shapes (torchvision variant, 224x224 input)."""
    layers = [
        ConvSpec("conv1", 3, 64, kernel=11, stride=4, padding=2, in_h=224, in_w=224),
        ConvSpec("conv2", 64, 192, kernel=5, stride=1, padding=2, in_h=27, in_w=27),
        ConvSpec("conv3", 192, 384, kernel=3, stride=1, padding=1, in_h=13, in_w=13),
        ConvSpec("conv4", 384, 256, kernel=3, stride=1, padding=1, in_h=13, in_w=13),
        ConvSpec("conv5", 256, 256, kernel=3, stride=1, padding=1, in_h=13, in_w=13),
        FCSpec("fc6", 256 * 6 * 6, 4096),
        FCSpec("fc7", 4096, 4096),
        FCSpec("fc8", 4096, 1000),
    ]
    return ModelSpec("alexnet", "cnn", layers)


def vgg16() -> ModelSpec:
    """VGG16's thirteen 3x3 CONV layers plus classifier shapes."""
    cfg = [
        # (name, in_c, out_c, in_hw)
        ("conv1_1", 3, 64, 224),
        ("conv1_2", 64, 64, 224),
        ("conv2_1", 64, 128, 112),
        ("conv2_2", 128, 128, 112),
        ("conv3_1", 128, 256, 56),
        ("conv3_2", 256, 256, 56),
        ("conv3_3", 256, 256, 56),
        ("conv4_1", 256, 512, 28),
        ("conv4_2", 512, 512, 28),
        ("conv4_3", 512, 512, 28),
        ("conv5_1", 512, 512, 14),
        ("conv5_2", 512, 512, 14),
        ("conv5_3", 512, 512, 14),
    ]
    layers = [
        ConvSpec(name, c_in, c_out, kernel=3, stride=1, padding=1, in_h=hw, in_w=hw)
        for name, c_in, c_out, hw in cfg
    ]
    layers.extend(
        [
            FCSpec("fc6", 512 * 7 * 7, 4096),
            FCSpec("fc7", 4096, 4096),
            FCSpec("fc8", 4096, 1000),
        ]
    )
    return ModelSpec("vgg16", "cnn", layers)


def _resnet_stage(
    prefix: str,
    blocks: int,
    in_channels: int,
    out_channels: int,
    in_hw: int,
    first_stride: int,
    bottleneck: bool,
) -> list[ConvSpec]:
    """Enumerate the CONV layers of one ResNet stage (incl. downsample)."""
    layers: list[ConvSpec] = []
    hw = in_hw
    c_in = in_channels
    for b in range(blocks):
        stride = first_stride if b == 0 else 1
        out_hw = hw // stride
        if bottleneck:
            mid = out_channels // 4
            layers.append(
                ConvSpec(f"{prefix}_{b}_conv1", c_in, mid, 1, stride, 0, hw, hw)
            )
            layers.append(
                ConvSpec(f"{prefix}_{b}_conv2", mid, mid, 3, 1, 1, out_hw, out_hw)
            )
            layers.append(
                ConvSpec(f"{prefix}_{b}_conv3", mid, out_channels, 1, 1, 0, out_hw, out_hw)
            )
        else:
            layers.append(
                ConvSpec(f"{prefix}_{b}_conv1", c_in, out_channels, 3, stride, 1, hw, hw)
            )
            layers.append(
                ConvSpec(
                    f"{prefix}_{b}_conv2", out_channels, out_channels, 3, 1, 1, out_hw, out_hw
                )
            )
        if b == 0 and (stride != 1 or c_in != out_channels):
            layers.append(
                ConvSpec(f"{prefix}_{b}_down", c_in, out_channels, 1, stride, 0, hw, hw)
            )
        c_in = out_channels
        hw = out_hw
    return layers


def resnet18() -> ModelSpec:
    """ResNet-18 CONV shapes (basic blocks) plus the final FC."""
    layers = [ConvSpec("conv1", 3, 64, kernel=7, stride=2, padding=3, in_h=224, in_w=224)]
    layers += _resnet_stage("layer1", 2, 64, 64, 56, 1, bottleneck=False)
    layers += _resnet_stage("layer2", 2, 64, 128, 56, 2, bottleneck=False)
    layers += _resnet_stage("layer3", 2, 128, 256, 28, 2, bottleneck=False)
    layers += _resnet_stage("layer4", 2, 256, 512, 14, 2, bottleneck=False)
    layers.append(FCSpec("fc", 512, 1000))
    return ModelSpec("resnet18", "cnn", layers)


def resnet50() -> ModelSpec:
    """ResNet-50 CONV shapes (bottleneck blocks) plus the final FC."""
    layers = [ConvSpec("conv1", 3, 64, kernel=7, stride=2, padding=3, in_h=224, in_w=224)]
    layers += _resnet_stage("layer1", 3, 64, 256, 56, 1, bottleneck=True)
    layers += _resnet_stage("layer2", 4, 256, 512, 56, 2, bottleneck=True)
    layers += _resnet_stage("layer3", 6, 512, 1024, 28, 2, bottleneck=True)
    layers += _resnet_stage("layer4", 3, 1024, 2048, 14, 2, bottleneck=True)
    layers.append(FCSpec("fc", 2048, 1000))
    return ModelSpec("resnet50", "cnn", layers)


def lstm_lm(hidden: int = 1024, layers: int = 2, seq_len: int = 35) -> ModelSpec:
    """2-layer LSTM language model on PTB shapes (paper's RNN benchmark).

    The paper's memory-bound analysis uses 1024-wide cells whose per-gate
    weight matrix is 1024x1024 = 2 MB at 16 bits (Section IV-B).
    """
    specs = [
        RNNSpec(f"lstm{i + 1}", "lstm", hidden, hidden, seq_len) for i in range(layers)
    ]
    return ModelSpec("lstm", "rnn", specs)


def gru_lm(hidden: int = 1024, layers: int = 2, seq_len: int = 35) -> ModelSpec:
    """2-layer GRU language model on PTB shapes."""
    specs = [
        RNNSpec(f"gru{i + 1}", "gru", hidden, hidden, seq_len) for i in range(layers)
    ]
    return ModelSpec("gru", "rnn", specs)


def gnmt(hidden: int = 1024, seq_len: int = 30) -> ModelSpec:
    """GNMT encoder-decoder LSTM shapes (WMT16 en-de benchmark).

    Four encoder and four decoder LSTM layers of width 1024, matching the
    GNMT-v2 configuration commonly used in MLPerf.  Attention is a small
    GEMV compared to the recurrent weights and is omitted from the
    workload, as the paper's memory-access analysis concerns the weight
    matrices.
    """
    specs = [
        RNNSpec(f"enc{i + 1}", "lstm", hidden, hidden, seq_len) for i in range(4)
    ]
    specs += [
        RNNSpec(f"dec{i + 1}", "lstm", hidden, hidden, seq_len) for i in range(4)
    ]
    return ModelSpec("gnmt", "rnn", specs)
