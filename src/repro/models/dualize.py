"""Converting trained proxy models into dual-module networks.

This is the offline phase of the paper end-to-end: for every accurate
layer of a trained model, construct the QDR approximate module, distill it
(Eq. 1) on calibration data, tune switching thresholds, and return a
network object that runs the online dual-module procedure layer by layer
with IMap chaining (Section III-C).

Entry points:

- :class:`DualizedCNN` -- dual-module version of a :class:`ProxyCNN`.
- :class:`DualizedLanguageModel` -- dual-module LSTM/GRU language model.
- :class:`DualizedSeq2Seq` -- dual-module encoder/decoder translator.

Each ``forward``/``evaluate`` returns both the quality metric and an
aggregated :class:`~repro.core.stats.LayerSavings`, which is everything
the Fig. 10 trade-off study needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.approx import (
    ApproximateConv2d,
    ApproximateGRUCell,
    ApproximateLSTMCell,
)
from repro.core.distill import distill_conv2d, distill_gru_cell, distill_lstm_cell
from repro.core.dual import (
    DualModuleConv2d,
    DualModuleGRUCell,
    DualModuleLSTMCell,
)
from repro.core.stats import LayerSavings
from repro.core.cache import tune_threshold_cached
from repro.core.switching import imap_from_activations
from repro.models.proxies import ProxyCNN, ProxyLanguageModel, ProxySeq2Seq
from repro.nn.layers import Conv2d, MaxPool2d, AvgPool2d, ReLU
from repro.nn.losses import CrossEntropyLoss, perplexity, topk_accuracy
from repro.nn.recurrent import GRU, LSTM

__all__ = [
    "reduced_dim",
    "DualizedCNN",
    "DualizedLanguageModel",
    "DualizedSeq2Seq",
]


def reduced_dim(full_dim: int, reduction: float) -> int:
    """Reduced dimension ``k = ceil(reduction * d)``, at least 1, at most d."""
    if not 0.0 < reduction <= 1.0:
        raise ValueError(f"reduction ratio must be in (0, 1], got {reduction}")
    return max(1, min(full_dim, math.ceil(reduction * full_dim)))


@dataclass
class _DualConvSlot:
    """One conv position inside the feature pipeline."""

    index: int  # position of the Conv2d inside model.features
    dual: DualModuleConv2d


class DualizedCNN:
    """Dual-module version of a trained :class:`ProxyCNN`.

    Every ``Conv2d -> ReLU`` pair in the feature extractor is replaced by a
    :class:`DualModuleConv2d`; pooling layers run unchanged; the classifier
    head stays accurate (it has no ReLU to exploit and is a negligible
    fraction of CNN compute).  The IMap chain uses the actual sparsity of
    each conv input, which -- because insensitive outputs are zero-filled --
    equals the corrected OMap of the previous layer propagated through
    pooling.

    Build with :meth:`build`, adjust aggressiveness with
    :meth:`set_thresholds_by_fraction`, run with :meth:`forward` or
    :meth:`evaluate`.
    """

    def __init__(self, model: ProxyCNN, slots: list[_DualConvSlot]):
        self.model = model
        self.slots = slots
        self._slot_by_index = {slot.index: slot for slot in slots}

    @classmethod
    def build(
        cls,
        model: ProxyCNN,
        calibration_images: np.ndarray,
        reduction: float = 0.25,
        weight_bits: int = 4,
        input_bits: int = 4,
        rng: np.random.Generator | None = None,
    ) -> "DualizedCNN":
        """Distill an approximate module for every conv layer.

        Args:
            model: trained proxy CNN (used as the teacher; not modified).
            calibration_images: batch of images for distillation and
                threshold tuning.
            reduction: dimension-reduction ratio ``k / d`` per layer.
            weight_bits/input_bits: Speculator precision (paper: INT4).
            rng: randomness for the ternary projections.

        Returns:
            A :class:`DualizedCNN` with all thresholds at 0 (pure
            sparsity-prediction mode); call
            :meth:`set_thresholds_by_fraction` to make switching more
            aggressive.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        slots: list[_DualConvSlot] = []
        x = np.asarray(calibration_images, dtype=np.float64)
        for index, layer in enumerate(model.features):
            if isinstance(layer, Conv2d):
                patch_dim = layer.in_channels * layer.kernel_size[0] * layer.kernel_size[1]
                approx = ApproximateConv2d(
                    layer.in_channels,
                    layer.out_channels,
                    layer.kernel_size,
                    reduced_features=reduced_dim(patch_dim, reduction),
                    stride=layer.stride,
                    padding=layer.padding,
                    rng=rng,
                    weight_bits=weight_bits,
                    input_bits=input_bits,
                )
                distill_conv2d(layer, approx, x, rng=rng)
                slots.append(
                    _DualConvSlot(index, DualModuleConv2d(layer, approx, threshold=0.0))
                )
            x = layer(x)
        return cls(model, slots)

    def set_thresholds_by_fraction(
        self, fraction: float | list[float], calibration_images: np.ndarray
    ) -> list[float]:
        """Tune each layer's threshold to a target insensitive fraction.

        Runs the dual network on calibration images layer by layer (so each
        layer sees the sparsified inputs produced by upstream switching)
        and sets the per-layer threshold to the matching quantile of the
        approximate pre-activations.

        Args:
            fraction: a single fraction applied to every layer, or one
                fraction per dual conv layer (the paper tunes thresholds
                per layer; see
                :func:`repro.core.thresholds.allocate_layer_fractions`).
            calibration_images: images driving the quantile calibration.

        Returns:
            The chosen per-layer thresholds in pipeline order.
        """
        if isinstance(fraction, (int, float)):
            fractions = [float(fraction)] * len(self.slots)
        else:
            fractions = [float(f) for f in fraction]
            if len(fractions) != len(self.slots):
                raise ValueError(
                    f"{len(fractions)} fractions for {len(self.slots)} layers"
                )
        thetas: list[float] = []
        x = np.asarray(calibration_images, dtype=np.float64)
        imap = None
        slot_counter = 0
        for index, layer in enumerate(self.model.features):
            slot = self._slot_by_index.get(index)
            if slot is not None:
                y_approx = slot.dual.approx.forward(x)
                theta = tune_threshold_cached(
                    y_approx,
                    "relu",
                    fractions[slot_counter],
                    layer=("conv", slot.index),
                )
                slot.dual.threshold = theta
                thetas.append(theta)
                x, report = slot.dual.forward(x, imap=imap)
                imap = None
                slot_counter += 1
            elif isinstance(layer, ReLU):
                continue  # fused into the dual conv
            else:
                x = layer(x)
                if isinstance(layer, (MaxPool2d, AvgPool2d)):
                    imap = None  # recomputed from activations below
        return thetas

    def forward(
        self, images: np.ndarray, use_imap: bool = True
    ) -> tuple[np.ndarray, LayerSavings]:
        """Run the dual-module network; returns (logits, total savings).

        Args:
            images: batch of shape ``(N, C, H, W)``.
            use_imap: charge executed MACs using input sparsity maps (the
                paper's IOS mode); switching itself is unaffected.
        """
        x = np.asarray(images, dtype=np.float64)
        total = LayerSavings()
        first_conv = True
        for index, layer in enumerate(self.model.features):
            slot = self._slot_by_index.get(index)
            if slot is not None:
                imap = None
                if use_imap and not first_conv:
                    imap = imap_from_activations(x)
                x, report = slot.dual.forward(x, imap=imap)
                total = total.merge(report.savings)
                first_conv = False
            elif isinstance(layer, ReLU):
                continue  # fused into the dual conv
            else:
                x = layer(x)
        logits = self.model.classifier(x)
        return logits, total

    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        k: int = 1,
        use_imap: bool = True,
    ) -> tuple[float, LayerSavings]:
        """Top-k accuracy plus savings on a labelled batch."""
        logits, savings = self.forward(images, use_imap=use_imap)
        return topk_accuracy(logits, labels, k=k), savings


class DualizedLanguageModel:
    """Dual-module version of a trained :class:`ProxyLanguageModel`.

    Each recurrent layer's cell is paired with a distilled QDR cell and run
    through :class:`DualModuleLSTMCell` / :class:`DualModuleGRUCell`.  The
    embedding and decoder stay accurate.
    """

    def __init__(self, model: ProxyLanguageModel, dual_cells: list):
        self.model = model
        self.dual_cells = dual_cells

    @classmethod
    def build(
        cls,
        model: ProxyLanguageModel,
        calibration_tokens: np.ndarray,
        reduction: float = 0.25,
        weight_bits: int = 4,
        input_bits: int = 4,
        threshold: float | dict[str, float] = 1.0,
        rng: np.random.Generator | None = None,
    ) -> "DualizedLanguageModel":
        """Distill per-layer QDR cells from calibration token sequences.

        Args:
            model: trained proxy LM (teacher; not modified).
            calibration_tokens: ``(T, B)`` token ids used to produce the
                per-layer calibration sequences.
            reduction: dimension-reduction ratio per input stream.
            threshold: initial saturation threshold(s) for all gates.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        embedded = model.embedding(np.asarray(calibration_tokens))
        layer_inputs = embedded
        dual_cells = []
        is_lstm = isinstance(model.rnn, LSTM)
        for cell in model.rnn.cells:
            kx = reduced_dim(cell.input_size, reduction)
            kh = reduced_dim(cell.hidden_size, reduction)
            if is_lstm:
                approx = ApproximateLSTMCell(
                    cell.input_size,
                    cell.hidden_size,
                    kx,
                    kh,
                    rng=rng,
                    weight_bits=weight_bits,
                    input_bits=input_bits,
                )
                distill_lstm_cell(cell, approx, layer_inputs)
                dual_cells.append(DualModuleLSTMCell(cell, approx, threshold))
            else:
                approx = ApproximateGRUCell(
                    cell.input_size,
                    cell.hidden_size,
                    kx,
                    kh,
                    rng=rng,
                    weight_bits=weight_bits,
                    input_bits=input_bits,
                )
                distill_gru_cell(cell, approx, layer_inputs)
                dual_cells.append(DualModuleGRUCell(cell, approx, threshold))
            # propagate accurately to get the next layer's calibration input
            layer_inputs = _run_accurate_layer(cell, layer_inputs, is_lstm)
        return cls(model, dual_cells)

    def set_thresholds_by_fraction(
        self, fraction: float, calibration_tokens: np.ndarray
    ) -> None:
        """Tune every gate threshold to a target insensitive fraction.

        Gate pre-activations are collected from a dual-module run (so each
        layer sees upstream approximation), and each gate threshold is set
        to the matching quantile of ``|y'|``.
        """
        xs = self.model.embedding(np.asarray(calibration_tokens))
        for layer_idx, dual in enumerate(self.dual_cells):
            hs = dual.accurate.hidden_size
            gate_pre: dict[str, list[np.ndarray]] = {g: [] for g, _ in dual.GATES}
            state = _init_state(dual, xs.shape[1])
            seq_len = xs.shape[0]
            outputs = np.empty((seq_len, xs.shape[1], hs))
            for t in range(seq_len):
                h_prev = state[0] if isinstance(state, tuple) else state
                pre_approx = dual.approx.pre_activations(xs[t], h_prev, quantized=True)
                for idx, (gate, _) in enumerate(dual.GATES):
                    gate_pre[gate].append(pre_approx[:, idx * hs : (idx + 1) * hs])
                state, _ = _step_dual(dual, xs[t], state)
                outputs[t] = state[0] if isinstance(state, tuple) else state
            for gate, act_name in dual.GATES:
                stacked = np.concatenate(gate_pre[gate])
                dual.thresholds[gate] = tune_threshold_cached(
                    stacked, act_name, fraction, layer=("rnn", layer_idx, gate)
                )
            xs = outputs

    def forward(self, tokens: np.ndarray) -> tuple[np.ndarray, LayerSavings]:
        """Dual-module LM forward; returns ``(logits, total savings)``."""
        xs = self.model.embedding(np.asarray(tokens))
        total = LayerSavings()
        for dual in self.dual_cells:
            if isinstance(dual, DualModuleLSTMCell):
                xs, _, reports = dual.run_sequence(xs)
            else:
                xs, _, reports = dual.run_sequence(xs)
            for report in reports:
                total = total.merge(report.savings)
        seq_len, batch, hidden = xs.shape
        logits = self.model.decoder(xs.reshape(seq_len * batch, hidden))
        return logits.reshape(seq_len, batch, -1), total

    def evaluate(
        self, tokens_in: np.ndarray, tokens_target: np.ndarray
    ) -> tuple[float, LayerSavings]:
        """Perplexity plus savings on a token batch (lower ppl is better)."""
        logits, savings = self.forward(tokens_in)
        return perplexity(CrossEntropyLoss()(logits, tokens_target)), savings


class DualizedSeq2Seq:
    """Dual-module version of a trained :class:`ProxySeq2Seq` (GNMT proxy)."""

    def __init__(
        self,
        model: ProxySeq2Seq,
        dual_encoder: DualModuleLSTMCell,
        dual_decoder: DualModuleLSTMCell,
    ):
        self.model = model
        self.dual_encoder = dual_encoder
        self.dual_decoder = dual_decoder

    @classmethod
    def build(
        cls,
        model: ProxySeq2Seq,
        calibration_src: np.ndarray,
        calibration_tgt_in: np.ndarray,
        reduction: float = 0.25,
        weight_bits: int = 4,
        input_bits: int = 4,
        threshold: float | dict[str, float] = 1.0,
        rng: np.random.Generator | None = None,
    ) -> "DualizedSeq2Seq":
        """Distill QDR cells for both the encoder and decoder LSTMs."""
        rng = rng if rng is not None else np.random.default_rng(0)
        duals = []
        for lstm_module, emb, tokens in (
            (model.encoder, model.src_embedding, calibration_src),
            (model.decoder, model.tgt_embedding, calibration_tgt_in),
        ):
            cell = lstm_module.cells[0]
            approx = ApproximateLSTMCell(
                cell.input_size,
                cell.hidden_size,
                reduced_dim(cell.input_size, reduction),
                reduced_dim(cell.hidden_size, reduction),
                rng=rng,
                weight_bits=weight_bits,
                input_bits=input_bits,
            )
            distill_lstm_cell(cell, approx, emb(np.asarray(tokens)))
            duals.append(DualModuleLSTMCell(cell, approx, threshold))
        return cls(model, duals[0], duals[1])

    def set_thresholds(self, threshold: float | dict[str, float]) -> None:
        """Set the same gate threshold(s) on both cells."""
        for dual in (self.dual_encoder, self.dual_decoder):
            if isinstance(threshold, dict):
                dual.thresholds.update(
                    {k: float(v) for k, v in threshold.items()}
                )
            else:
                for gate in dual.thresholds:
                    dual.thresholds[gate] = float(threshold)

    def set_thresholds_by_fraction(
        self, fraction: float, src: np.ndarray, tgt_in: np.ndarray
    ) -> None:
        """Tune every gate threshold to a target insensitive fraction.

        Gate pre-activation quantiles are measured from a teacher-forced
        calibration pass through each dual cell.
        """
        for dual, emb, tokens in (
            (self.dual_encoder, self.model.src_embedding, src),
            (self.dual_decoder, self.model.tgt_embedding, tgt_in),
        ):
            xs = emb(np.asarray(tokens))
            hs = dual.accurate.hidden_size
            state = dual.accurate.init_state(xs.shape[1])
            gate_pre: dict[str, list[np.ndarray]] = {g: [] for g, _ in dual.GATES}
            for t in range(xs.shape[0]):
                pre = dual.approx.pre_activations(xs[t], state[0], quantized=True)
                for idx, (gate, _) in enumerate(dual.GATES):
                    gate_pre[gate].append(pre[:, idx * hs : (idx + 1) * hs])
                state, _ = dual.accurate(xs[t], state)
            for gate, act_name in dual.GATES:
                dual.thresholds[gate] = tune_threshold_cached(
                    np.concatenate(gate_pre[gate]),
                    act_name,
                    fraction,
                    layer=("seq2seq", id(dual), gate),
                )

    def greedy_decode(
        self, src: np.ndarray, max_len: int
    ) -> tuple[np.ndarray, LayerSavings]:
        """Greedy decoding through the dual-module cells; returns tokens + savings.

        Mirrors the accurate model's decode path: if the model carries an
        attention module (:class:`repro.models.attention.
        AttentionProxySeq2Seq`), the dual encoder's outputs serve as the
        attention memory and each decoder state is attention-combined
        before the output head.
        """
        total = LayerSavings()
        src_emb = self.model.src_embedding(np.asarray(src))
        memory, enc_state, reports = self.dual_encoder.run_sequence(src_emb)
        for report in reports:
            total = total.merge(report.savings)
        attention = getattr(self.model, "attention", None)
        batch = src.shape[1]
        current = np.full(batch, self.model.BOS, dtype=np.int64)
        outputs = np.empty((max_len, batch), dtype=np.int64)
        state = enc_state
        for t in range(max_len):
            emb = self.model.tgt_embedding(current[None, :])[0]
            state, report = self.dual_decoder.forward(emb, state)
            total = total.merge(report.savings)
            head_in = state[0]
            if attention is not None:
                head_in, _ = attention.forward_step(head_in, memory)
            logits = self.model.head(head_in)
            current = logits.argmax(axis=-1)
            outputs[t] = current
        return outputs, total

    def evaluate(
        self, task, samples: int = 64, rng: np.random.Generator | None = None
    ) -> tuple[float, LayerSavings]:
        """Token-accuracy score plus savings on fresh synthetic pairs."""
        rng = rng if rng is not None else np.random.default_rng(1234)
        src, tgt = task.sample(samples, rng)
        pred, savings = self.greedy_decode(src, max_len=tgt.shape[0])
        return task.score(pred, tgt), savings


# -- helpers -------------------------------------------------------------------


def _run_accurate_layer(cell, xs: np.ndarray, is_lstm: bool) -> np.ndarray:
    """Unroll one accurate recurrent layer over a sequence."""
    seq_len, batch = xs.shape[0], xs.shape[1]
    outputs = np.empty((seq_len, batch, cell.hidden_size))
    if is_lstm:
        state = cell.init_state(batch)
        for t in range(seq_len):
            state, _ = cell(xs[t], state)
            outputs[t] = state[0]
    else:
        h = cell.init_state(batch)
        for t in range(seq_len):
            h, _ = cell(xs[t], h)
            outputs[t] = h
    return outputs


def _init_state(dual, batch: int):
    """Initial state for a dual cell (tuple for LSTM, array for GRU)."""
    return dual.accurate.init_state(batch)


def _step_dual(dual, x, state):
    """One step of a dual cell, normalising the return signature."""
    if isinstance(dual, DualModuleLSTMCell):
        return dual.forward(x, state)
    new_h, report = dual.forward(x, state)
    return new_h, report
