"""Model zoo: shape-exact benchmark specs and trainable proxy models.

Two complementary views of the paper's benchmark networks:

- :mod:`repro.models.zoo` -- :class:`ModelSpec` shape descriptions with
  exact ImageNet/PTB/WMT16 layer geometry; these drive the architecture
  simulator (cycle/energy results never need trained weights).
- :mod:`repro.models.proxies` -- down-scaled *trainable* models built on
  :mod:`repro.nn` and the synthetic datasets; these drive the
  accuracy-vs-savings studies (Figs. 2, 10, 13b) where real forward passes
  and quality metrics are required.
- :mod:`repro.models.dualize` -- converting trained proxies into
  dual-module networks (distill + threshold-tune every layer).
"""

from repro.models.layer_spec import ConvSpec, FCSpec, ModelSpec, RNNSpec
from repro.models.registry import MODEL_REGISTRY, get_model_spec
from repro.models.zoo import (
    alexnet,
    gnmt,
    gru_lm,
    lstm_lm,
    resnet18,
    resnet50,
    vgg16,
)

__all__ = [
    "ConvSpec",
    "FCSpec",
    "RNNSpec",
    "ModelSpec",
    "alexnet",
    "vgg16",
    "resnet18",
    "resnet50",
    "lstm_lm",
    "gru_lm",
    "gnmt",
    "MODEL_REGISTRY",
    "get_model_spec",
]
