"""Trainable proxy models for the accuracy-vs-savings studies.

The paper's quality metrics (top-1/top-5 accuracy, perplexity, BLEU) need
real trained networks.  Full ImageNet-scale training is infeasible on CPU,
so these proxies keep the *architectural family* (conv stacks with ReLU,
stacked LSTM/GRU language models, an encoder-decoder seq2seq) at a scale
trainable in seconds on the synthetic datasets of :mod:`repro.nn.data`.
DESIGN.md's substitution table records the fidelity argument.

Each proxy pairs with a trainer returning the converged quality metric;
the dual-module conversion in :mod:`repro.models.dualize` then measures
quality degradation as thresholds grow -- the Fig. 10 trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.nn.data import GaussianMixtureImages, ZipfTokenStream, SyntheticTranslationTask
from repro.nn.layers import (
    Conv2d,
    Embedding,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.losses import CrossEntropyLoss, perplexity, topk_accuracy
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.recurrent import GRU, LSTM

__all__ = [
    "ProxyCNN",
    "proxy_alexnet",
    "proxy_resnet18",
    "ProxyLanguageModel",
    "ProxySeq2Seq",
    "train_classifier",
    "evaluate_classifier",
    "train_language_model",
    "evaluate_language_model",
    "train_seq2seq",
    "evaluate_seq2seq",
]


class ProxyCNN(Module):
    """A conv/ReLU/pool stack plus linear classifier head.

    Built as alternating ``Conv2d -> ReLU`` pairs (with optional pooling)
    so that every conv layer is followed by the ReLU whose insensitive
    region dual-module processing exploits.

    Attributes:
        features: the convolutional ``Sequential``.
        classifier: the ``Flatten -> Linear`` head.
        conv_layers: direct references to each ``Conv2d`` in order.
    """

    def __init__(self, features: Sequential, classifier: Sequential):
        super().__init__()
        self.features = features
        self.classifier = classifier
        self.conv_layers = [m for m in features if isinstance(m, Conv2d)]

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad_out))


def proxy_alexnet(
    num_classes: int = 10, rng: np.random.Generator | None = None
) -> ProxyCNN:
    """AlexNet-family proxy: 3 conv layers with growing channels, 32x32 in."""
    rng = rng if rng is not None else np.random.default_rng(0)
    features = Sequential(
        Conv2d(3, 16, 5, stride=1, padding=2, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(32, 32, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
    )
    classifier = Sequential(Flatten(), Linear(32 * 4 * 4, num_classes, rng=rng))
    return ProxyCNN(features, classifier)


def proxy_resnet18(
    num_classes: int = 10, rng: np.random.Generator | None = None
) -> ProxyCNN:
    """ResNet-family proxy: deeper stack of 3x3 convs (plain, no skips).

    Skip connections don't change the dual-module algorithm (they operate
    on pre-activations of individual conv layers), so the proxy keeps
    depth and channel progression but stays sequential.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    features = Sequential(
        Conv2d(3, 16, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        Conv2d(16, 16, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        Conv2d(32, 32, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(32, 64, 3, stride=1, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
    )
    classifier = Sequential(Flatten(), Linear(64 * 4 * 4, num_classes, rng=rng))
    return ProxyCNN(features, classifier)


def train_classifier(
    model: ProxyCNN,
    dataset: GaussianMixtureImages,
    steps: int = 120,
    batch_size: int = 32,
    lr: float = 1e-3,
    rng: np.random.Generator | None = None,
) -> float:
    """Train a proxy classifier with Adam; returns final-step loss."""
    rng = rng if rng is not None else np.random.default_rng(0)
    optimizer = Adam(model.parameters(), lr=lr)
    criterion = CrossEntropyLoss()
    loss = float("nan")
    for _ in range(steps):
        images, labels = dataset.sample(batch_size, rng)
        logits = model(images)
        loss = criterion(logits, labels)
        optimizer.zero_grad()
        model.backward(criterion.backward())
        optimizer.step()
    return loss


def evaluate_classifier(
    model: ProxyCNN,
    dataset: GaussianMixtureImages,
    samples: int = 512,
    rng: np.random.Generator | None = None,
    k: int = 1,
) -> float:
    """Top-k accuracy of a proxy classifier on fresh synthetic samples."""
    rng = rng if rng is not None else np.random.default_rng(1234)
    images, labels = dataset.sample(samples, rng)
    logits = model(images)
    return topk_accuracy(logits, labels, k=k)


class ProxyLanguageModel(Module):
    """Embedding -> stacked LSTM/GRU -> tied-size linear decoder.

    The PTB stand-in: trained on :class:`ZipfTokenStream`, scored in
    perplexity, exactly the metric of paper Fig. 10(c).
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 32,
        hidden_size: int = 64,
        num_layers: int = 1,
        cell: str = "lstm",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)
        if cell == "lstm":
            self.rnn: Module = LSTM(embed_dim, hidden_size, num_layers, rng=rng)
        elif cell == "gru":
            self.rnn = GRU(embed_dim, hidden_size, num_layers, rng=rng)
        else:
            raise ValueError(f"cell must be 'lstm' or 'gru', got {cell!r}")
        self.decoder = Linear(hidden_size, vocab_size, rng=rng)
        self.cell_kind = cell
        self.hidden_size = hidden_size

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Map ``(T, B)`` token ids to ``(T, B, vocab)`` logits."""
        embedded = self.embedding(tokens)
        hidden, _ = self.rnn(embedded)
        seq_len, batch, _ = hidden.shape
        logits = self.decoder(hidden.reshape(seq_len * batch, -1))
        return logits.reshape(seq_len, batch, self.vocab_size)

    def backward(self, grad_logits: np.ndarray) -> None:
        seq_len, batch, _ = grad_logits.shape
        grad_hidden = self.decoder.backward(
            grad_logits.reshape(seq_len * batch, -1)
        ).reshape(seq_len, batch, self.hidden_size)
        grad_embedded = self.rnn.backward(grad_hidden)
        self.embedding.backward(grad_embedded)


def train_language_model(
    model: ProxyLanguageModel,
    stream: ZipfTokenStream,
    steps: int = 150,
    seq_len: int = 20,
    batch_size: int = 16,
    lr: float = 3e-3,
    rng: np.random.Generator | None = None,
) -> float:
    """Train an LM proxy with Adam; returns final-step loss (mean NLL)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    optimizer = Adam(model.parameters(), lr=lr)
    criterion = CrossEntropyLoss()
    loss = float("nan")
    for _ in range(steps):
        inputs, targets = stream.lm_batch(seq_len, batch_size, rng)
        logits = model(inputs)
        loss = criterion(logits, targets)
        optimizer.zero_grad()
        model.backward(criterion.backward())
        optimizer.step()
    return loss


def evaluate_language_model(
    model: ProxyLanguageModel,
    stream: ZipfTokenStream,
    seq_len: int = 20,
    batch_size: int = 32,
    rng: np.random.Generator | None = None,
) -> float:
    """Perplexity on fresh synthetic text (lower is better)."""
    rng = rng if rng is not None else np.random.default_rng(1234)
    inputs, targets = stream.lm_batch(seq_len, batch_size, rng)
    logits = model(inputs)
    return perplexity(CrossEntropyLoss()(logits, targets))


class ProxySeq2Seq(Module):
    """Encoder-decoder LSTM (the GNMT stand-in).

    The encoder consumes the source; its final state seeds the decoder,
    which is teacher-forced during training and greedy-decoded during
    evaluation.  Quality is the token-accuracy "BLEU analogue" defined by
    :class:`~repro.nn.data.SyntheticTranslationTask`.
    """

    #: token id prepended to the decoder input (reserved from the vocab).
    BOS = 0

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 24,
        hidden_size: int = 48,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.src_embedding = Embedding(vocab_size, embed_dim, rng=rng)
        self.tgt_embedding = Embedding(vocab_size, embed_dim, rng=rng)
        self.encoder = LSTM(embed_dim, hidden_size, rng=rng)
        self.decoder = LSTM(embed_dim, hidden_size, rng=rng)
        self.head = Linear(hidden_size, vocab_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> np.ndarray:
        """Teacher-forced logits of shape ``(T_tgt, B, vocab)``."""
        enc_out, enc_state = self.encoder(self.src_embedding(src))
        del enc_out
        dec_out, _ = self.decoder(self.tgt_embedding(tgt_in), state=enc_state)
        seq_len, batch, _ = dec_out.shape
        logits = self.head(dec_out.reshape(seq_len * batch, -1))
        return logits.reshape(seq_len, batch, self.vocab_size)

    def backward(self, grad_logits: np.ndarray) -> None:
        seq_len, batch, _ = grad_logits.shape
        grad_dec = self.head.backward(
            grad_logits.reshape(seq_len * batch, -1)
        ).reshape(seq_len, batch, self.hidden_size)
        grad_tgt_emb = self.decoder.backward(grad_dec)
        self.tgt_embedding.backward(grad_tgt_emb)
        # Gradient into the encoder final state is dropped: with explicit
        # backward passes, threading state gradients across the
        # encoder/decoder boundary is a second-order effect for this proxy
        # task, which trains to high quality without it.

    def greedy_decode(self, src: np.ndarray, max_len: int) -> np.ndarray:
        """Greedy autoregressive decoding; returns ``(max_len, B)`` tokens."""
        _, enc_state = self.encoder(self.src_embedding(src))
        batch = src.shape[1]
        tokens = np.full((1, batch), self.BOS, dtype=np.int64)
        outputs = np.empty((max_len, batch), dtype=np.int64)
        state = enc_state
        current = tokens[0]
        for t in range(max_len):
            emb = self.tgt_embedding(current[None, :])
            dec_out, state = self.decoder(emb, state=state)
            logits = self.head(dec_out[0])
            current = logits.argmax(axis=-1)
            outputs[t] = current
        return outputs


def train_seq2seq(
    model: ProxySeq2Seq,
    task: SyntheticTranslationTask,
    steps: int = 200,
    batch_size: int = 32,
    lr: float = 5e-3,
    rng: np.random.Generator | None = None,
) -> float:
    """Teacher-forced training with Adam; returns final-step loss."""
    rng = rng if rng is not None else np.random.default_rng(0)
    optimizer = Adam(model.parameters(), lr=lr)
    criterion = CrossEntropyLoss()
    loss = float("nan")
    for _ in range(steps):
        src, tgt = task.sample(batch_size, rng)
        bos = np.full((1, batch_size), ProxySeq2Seq.BOS, dtype=np.int64)
        tgt_in = np.concatenate([bos, tgt[:-1]], axis=0)
        logits = model(src, tgt_in)
        loss = criterion(logits, tgt)
        optimizer.zero_grad()
        model.backward(criterion.backward())
        optimizer.step()
    return loss


def evaluate_seq2seq(
    model: ProxySeq2Seq,
    task: SyntheticTranslationTask,
    samples: int = 128,
    rng: np.random.Generator | None = None,
) -> float:
    """Greedy-decode fresh pairs and return the token-accuracy score."""
    rng = rng if rng is not None else np.random.default_rng(1234)
    src, tgt = task.sample(samples, rng)
    pred = model.greedy_decode(src, max_len=tgt.shape[0])
    return task.score(pred, tgt)
