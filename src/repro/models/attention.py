"""Dot-product attention and an attentional seq2seq proxy (GNMT-style).

GNMT decodes with attention over the encoder states; the plain
:class:`~repro.models.proxies.ProxySeq2Seq` omits it.  This module adds a
Luong-style dot-product attention layer and an attentional proxy so the
GNMT stand-in carries the same structural pieces the real model does
(recurrent encoder, recurrent decoder, attention, combine projection).

Gradient note: attention weights depend on the decoder state, giving a
second gradient path (through the scores) besides the value path.  The
explicit backward here propagates the *value* path exactly and truncates
the score path -- standard practice for hand-written attention gradients
in shallow proxies, and the attention parameters themselves (the combine
projection) still train exactly.  The truncation is documented and tested
(training still converges well above the no-attention baseline).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.models.proxies import ProxySeq2Seq

__all__ = ["DotProductAttention", "AttentionProxySeq2Seq"]


class DotProductAttention(Module):
    """Luong dot-product attention with a tanh combine projection.

    Given decoder state ``h`` (batch, H) and encoder outputs ``memory``
    (T, batch, H): scores ``= memory . h``, weights ``= softmax(scores)``,
    context ``= sum(weights * memory)``, output
    ``= tanh(W_c [h; context])``.
    """

    def __init__(self, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.hidden_size = hidden_size
        self.combine = Linear(2 * hidden_size, hidden_size, rng=rng)
        self._cache = None

    def forward_step(
        self, h: np.ndarray, memory: np.ndarray
    ) -> tuple[np.ndarray, tuple]:
        """Attend for one step; returns ``(combined, cache)``.

        The cache makes multi-step use safe: the combine projection is
        shared across time steps, so each step's backward must carry its
        own activations rather than rely on the layer's single-slot cache.
        """
        h = np.asarray(h, dtype=np.float64)
        memory = np.asarray(memory, dtype=np.float64)
        if memory.shape[2] != self.hidden_size or h.shape[1] != self.hidden_size:
            raise ValueError("hidden-size mismatch between state and memory")
        scores = np.einsum("tbh,bh->tb", memory, h)
        weights = F.softmax(scores, axis=0)
        context = np.einsum("tb,tbh->bh", weights, memory)
        combined_in = np.concatenate([h, context], axis=1)
        pre = combined_in @ self.combine.weight.data.T + self.combine.bias.data
        out = F.tanh(pre)
        return out, (combined_in, out)

    def backward_step(self, grad_out: np.ndarray, cache: tuple) -> np.ndarray:
        """Backward for one step to the decoder state ``h`` (value path)."""
        combined_in, out = cache
        grad_pre = grad_out * F.tanh_grad(out)
        self.combine.weight.grad += grad_pre.T @ combined_in
        self.combine.bias.grad += grad_pre.sum(axis=0)
        grad_concat = grad_pre @ self.combine.weight.data
        return grad_concat[:, : self.hidden_size]

    def forward(self, h: np.ndarray, memory: np.ndarray) -> np.ndarray:
        """Single-use convenience wrapper around :meth:`forward_step`."""
        out, cache = self.forward_step(h, memory)
        self._cache = cache
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Single-use convenience wrapper around :meth:`backward_step`."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache, self._cache = self._cache, None
        return self.backward_step(grad_out, cache)


class AttentionProxySeq2Seq(ProxySeq2Seq):
    """The GNMT-style proxy: encoder-decoder LSTM plus dot-product attention.

    The decoder output at each step is the attention-combined vector, so
    the head (and greedy decoding) see source-aware states.  Dual-module
    conversion applies unchanged -- the recurrent cells are the accurate
    modules; attention is a small GEMV the paper's workload analysis
    ignores (see :func:`repro.models.zoo.gnmt`).
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int = 24,
        hidden_size: int = 48,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(vocab_size, embed_dim, hidden_size, rng=rng)
        self.attention = DotProductAttention(hidden_size, rng=rng)

    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> np.ndarray:
        """Teacher-forced logits with attention, ``(T_tgt, B, vocab)``."""
        memory, enc_state = self.encoder(self.src_embedding(src))
        dec_out, _ = self.decoder(self.tgt_embedding(tgt_in), state=enc_state)
        seq_len, batch, _ = dec_out.shape
        attended = np.empty_like(dec_out)
        self._attn_caches = []
        for t in range(seq_len):
            attended[t], cache = self.attention.forward_step(dec_out[t], memory)
            self._attn_caches.append(cache)
        self._attended_shape = attended.shape
        logits = self.head(attended.reshape(seq_len * batch, -1))
        return logits.reshape(seq_len, batch, self.vocab_size)

    def backward(self, grad_logits: np.ndarray) -> None:
        seq_len, batch, _ = grad_logits.shape
        grad_attended = self.head.backward(
            grad_logits.reshape(seq_len * batch, -1)
        ).reshape(self._attended_shape)
        grad_dec = np.empty((seq_len, batch, self.hidden_size))
        for t in range(seq_len - 1, -1, -1):
            grad_dec[t] = self.attention.backward_step(
                grad_attended[t], self._attn_caches[t]
            )
        grad_tgt_emb = self.decoder.backward(grad_dec)
        self.tgt_embedding.backward(grad_tgt_emb)

    def greedy_decode(self, src: np.ndarray, max_len: int) -> np.ndarray:
        """Greedy decoding through the attention path."""
        memory, enc_state = self.encoder(self.src_embedding(np.asarray(src)))
        batch = src.shape[1]
        current = np.full(batch, self.BOS, dtype=np.int64)
        outputs = np.empty((max_len, batch), dtype=np.int64)
        state = enc_state
        for t in range(max_len):
            emb = self.tgt_embedding(current[None, :])
            dec_out, state = self.decoder(emb, state=state)
            attended, _ = self.attention.forward_step(dec_out[0], memory)
            logits = self.head(attended)
            current = logits.argmax(axis=-1)
            outputs[t] = current
        return outputs
