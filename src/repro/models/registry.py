"""Name-based lookup of benchmark model specs."""

from __future__ import annotations

from repro.models import zoo
from repro.models.layer_spec import ModelSpec

__all__ = ["MODEL_REGISTRY", "get_model_spec"]

#: Mapping of model name to zero-argument ModelSpec factory.
MODEL_REGISTRY = {
    "alexnet": zoo.alexnet,
    "vgg16": zoo.vgg16,
    "resnet18": zoo.resnet18,
    "resnet50": zoo.resnet50,
    "lstm": zoo.lstm_lm,
    "gru": zoo.gru_lm,
    "gnmt": zoo.gnmt,
}


def get_model_spec(name: str) -> ModelSpec:
    """Build the :class:`ModelSpec` for a registered model name.

    Raises:
        KeyError: for unknown names; the message lists valid options.
    """
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
    return factory()
