"""Layer-specification IR: the shapes the architecture simulator consumes.

The cycle-level results in the paper (Figs. 11-13, Table I) depend on layer
*shapes* -- MAC counts, weight volumes, feature-map sizes -- not on trained
weights.  This module defines a small IR describing those shapes:

- :class:`ConvSpec` -- a convolutional layer (with input geometry).
- :class:`FCSpec` -- a fully-connected layer.
- :class:`RNNSpec` -- an LSTM/GRU layer unrolled over a sequence.
- :class:`ModelSpec` -- an ordered list of layer specs plus metadata.

All sizes are in elements; byte counts use the Executor's 16-bit datapath
(2 bytes/element) unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.functional import conv_output_size

__all__ = ["ConvSpec", "FCSpec", "RNNSpec", "ModelSpec", "BYTES_PER_ELEMENT"]

#: Executor datapath width (INT16) in bytes per element.
BYTES_PER_ELEMENT = 2


@dataclass(frozen=True)
class ConvSpec:
    """Shape of one convolutional layer.

    Attributes:
        name: layer label, e.g. ``"conv3"``.
        in_channels/out_channels: channel counts.
        kernel: square filter size.
        stride/padding: spatial geometry.
        in_h/in_w: input feature-map spatial size.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    padding: int
    in_h: int
    in_w: int

    @property
    def out_h(self) -> int:
        """Output feature-map height."""
        return conv_output_size(self.in_h, self.kernel, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        """Output feature-map width."""
        return conv_output_size(self.in_w, self.kernel, self.stride, self.padding)

    @property
    def receptive_field(self) -> int:
        """Elements in one receptive field: ``C_in * k * k`` (the GEMM depth)."""
        return self.in_channels * self.kernel * self.kernel

    @property
    def output_elements(self) -> int:
        """Output activations per image: ``C_out * H' * W'``."""
        return self.out_channels * self.out_h * self.out_w

    @property
    def input_elements(self) -> int:
        """Input activations per image: ``C_in * H * W``."""
        return self.in_channels * self.in_h * self.in_w

    @property
    def weight_elements(self) -> int:
        """Filter weights: ``C_out * C_in * k * k``."""
        return self.out_channels * self.receptive_field

    @property
    def macs(self) -> int:
        """Dense MACs per image."""
        return self.output_elements * self.receptive_field

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.in_channels}x{self.in_h}x{self.in_w} -> "
            f"{self.out_channels}x{self.out_h}x{self.out_w} (k={self.kernel}, "
            f"s={self.stride}, p={self.padding})"
        )


@dataclass(frozen=True)
class FCSpec:
    """Shape of one fully-connected layer."""

    name: str
    in_features: int
    out_features: int

    @property
    def weight_elements(self) -> int:
        """Weight matrix elements ``n * d``."""
        return self.in_features * self.out_features

    @property
    def output_elements(self) -> int:
        """Output activations per input vector."""
        return self.out_features

    @property
    def input_elements(self) -> int:
        """Input activations per vector."""
        return self.in_features

    @property
    def macs(self) -> int:
        """Dense MACs per input vector."""
        return self.weight_elements

    def __str__(self) -> str:
        return f"{self.name}: FC {self.in_features} -> {self.out_features}"


@dataclass(frozen=True)
class RNNSpec:
    """Shape of one recurrent layer unrolled over ``seq_len`` steps.

    Attributes:
        name: layer label, e.g. ``"lstm1"``.
        kind: ``"lstm"`` (4 gates) or ``"gru"`` (3 gates).
        input_size / hidden_size: cell dimensions.
        seq_len: number of time steps the evaluation unrolls.
    """

    name: str
    kind: str
    input_size: int
    hidden_size: int
    seq_len: int

    def __post_init__(self):
        if self.kind not in ("lstm", "gru"):
            raise ValueError(f"kind must be 'lstm' or 'gru', got {self.kind!r}")

    @property
    def num_gates(self) -> int:
        """Gate count: 4 for LSTM, 3 for GRU."""
        return 4 if self.kind == "lstm" else 3

    @property
    def weight_elements(self) -> int:
        """All gate weights: ``G * H * (D + H)`` (biases excluded)."""
        return self.num_gates * self.hidden_size * (self.input_size + self.hidden_size)

    @property
    def macs_per_step(self) -> int:
        """Dense MACs per time step."""
        return self.weight_elements

    @property
    def macs(self) -> int:
        """Dense MACs over the whole sequence."""
        return self.macs_per_step * self.seq_len

    @property
    def outputs_per_step(self) -> int:
        """Gate pre-activations produced per step: ``G * H``."""
        return self.num_gates * self.hidden_size

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.kind.upper()} D={self.input_size} H={self.hidden_size} "
            f"T={self.seq_len}"
        )


@dataclass
class ModelSpec:
    """An ordered collection of layer specs.

    Attributes:
        name: model name, e.g. ``"alexnet"``.
        domain: ``"cnn"`` or ``"rnn"`` -- selects the simulator dataflow.
        layers: ordered layer specs (conv/fc for CNNs, rnn for RNNs).
    """

    name: str
    domain: str
    layers: list = field(default_factory=list)

    def __post_init__(self):
        if self.domain not in ("cnn", "rnn"):
            raise ValueError(f"domain must be 'cnn' or 'rnn', got {self.domain!r}")

    @property
    def conv_layers(self) -> list[ConvSpec]:
        """The convolutional layers only."""
        return [layer for layer in self.layers if isinstance(layer, ConvSpec)]

    @property
    def rnn_layers(self) -> list[RNNSpec]:
        """The recurrent layers only."""
        return [layer for layer in self.layers if isinstance(layer, RNNSpec)]

    @property
    def total_macs(self) -> int:
        """Dense MACs over all layers (per image / per sequence)."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_elements(self) -> int:
        """Total weight volume in elements."""
        return sum(layer.weight_elements for layer in self.layers)

    def layer(self, name: str):
        """Look up a layer spec by name.

        Raises:
            KeyError: if no layer has that name.
        """
        for spec in self.layers:
            if spec.name == name:
                return spec
        raise KeyError(f"model {self.name!r} has no layer {name!r}")

    def __str__(self) -> str:
        lines = [f"ModelSpec {self.name} ({self.domain}):"]
        lines.extend(f"  {layer}" for layer in self.layers)
        return "\n".join(lines)
