"""Online guards: map checksums, weight scrubbing, consistency audits.

Three mechanisms, each mapped to the hardware it would occupy:

1. **Map integrity** (:class:`MapGuard`): the Speculator appends a
   per-channel CRC when it writes a switching map to the GLB; the Executor
   verifies it before consuming the map.  A failed channel falls back to
   *dense* (every bit forced to the fail-safe value): for an OMap that
   means "compute everything accurately", for an IMap "treat every input
   as nonzero" -- both directions preserve exact computed values and only
   cost cycles, which is the asymmetry the whole design leans on.

2. **Weight-memory scrubbing** (:class:`WeightMemoryScrubber`): weight
   rows carry a CRC from the moment they are loaded; a mismatch triggers a
   refetch of the row from the (host/DRAM) golden copy, like an ECC scrub.

3. **Consistency audit** (:class:`ConsistencyAuditor`): checksums cannot
   catch a Speculator that checksums its own wrong answers.  The audit
   samples a small fraction of outputs the map marked *insensitive* and
   has the Executor recompute them; a sample whose accurate result is
   sensitive after all is a *dangerous miss*.  The audited miss rate is
   the live estimate of the misspeculation rate that feeds the
   degradation policy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "map_checksum",
    "row_checksums",
    "MapGuard",
    "WeightMemoryScrubber",
    "ConsistencyAuditor",
    "AuditResult",
]


def row_checksums(values: np.ndarray) -> np.ndarray:
    """Per-row CRC32 of an integer array (RNN sensitive-count words).

    The leading axis indexes rows (time steps); a 1-D array is one row.
    """
    if np.asarray(values).ndim == 0:
        raise ValueError("cannot checksum a scalar")
    arr = np.ascontiguousarray(np.asarray(values, dtype=np.int64))
    if arr.ndim == 1:
        arr = arr[None]
    flat = arr.reshape(arr.shape[0], -1)
    return np.fromiter(
        (zlib.crc32(row.tobytes()) for row in flat),
        dtype=np.uint32,
        count=flat.shape[0],
    )


def map_checksum(bits: np.ndarray) -> np.ndarray:
    """Per-channel CRC32 of a binary map.

    The leading axis is the channel axis; a 1-D map (FC/RNN) is treated as
    a single channel.  Returns an array of ``uint32`` checksums.
    """
    if np.asarray(bits).ndim == 0:
        raise ValueError("cannot checksum a scalar map")
    arr = np.ascontiguousarray(np.asarray(bits, dtype=np.uint8))
    if arr.ndim == 1:
        arr = arr[None]
    flat = arr.reshape(arr.shape[0], -1)
    return np.fromiter(
        (zlib.crc32(row.tobytes()) for row in flat),
        dtype=np.uint32,
        count=flat.shape[0],
    )


@dataclass
class MapGuard:
    """Checksum verification with fail-safe dense fallback.

    Attributes:
        fail_safe_value: the bit value a failed channel degrades to.  ``1``
            is fail-safe for both map kinds: an all-ones OMap computes
            every output accurately; an all-ones IMap skips nothing.
        checksum_failures: cumulative channels whose CRC mismatched.
        channels_checked: cumulative channels verified.
    """

    fail_safe_value: int = 1
    checksum_failures: int = 0
    channels_checked: int = 0

    def protect(self, bits: np.ndarray) -> np.ndarray:
        """Checksums as written alongside the map (producer side)."""
        return map_checksum(bits)

    def validate(
        self, bits: np.ndarray, checksums: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Verify a map against its checksums (consumer side).

        Returns:
            ``(usable map, failed channel count)`` -- failed channels are
            replaced wholesale by the fail-safe value; intact channels pass
            through untouched.
        """
        observed = map_checksum(bits)
        if observed.shape != np.asarray(checksums).shape:
            raise ValueError(
                f"checksum count {observed.shape} != protected {np.asarray(checksums).shape}"
            )
        bad = observed != checksums
        failures = int(bad.sum())
        self.channels_checked += int(observed.size)
        self.checksum_failures += failures
        if not failures:
            return bits, 0
        repaired = np.array(bits, copy=True)
        if repaired.ndim == 1:
            repaired[...] = self.fail_safe_value
        else:
            repaired[bad] = self.fail_safe_value
        return repaired, failures


@dataclass
class WeightMemoryScrubber:
    """Per-row CRC scrubbing of a weight tensor with golden refetch.

    ``protect`` is called when the clean weights are first loaded (the
    golden copy lives in host memory / DRAM); ``scrub`` verifies a
    possibly-corrupted on-chip copy and refetches any row whose CRC
    mismatches.

    Attributes:
        rows_refetched: cumulative rows recovered from the golden copy.
        rows_checked: cumulative rows verified.
    """

    rows_refetched: int = 0
    rows_checked: int = 0
    _golden: np.ndarray | None = field(default=None, repr=False)
    _sums: np.ndarray | None = field(default=None, repr=False)

    @staticmethod
    def _row_sums(weights: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(
            np.asarray(weights, dtype=np.float64)
        ).reshape(weights.shape[0], -1)
        return np.fromiter(
            (zlib.crc32(row.tobytes()) for row in flat),
            dtype=np.uint32,
            count=flat.shape[0],
        )

    def protect(self, weights: np.ndarray) -> None:
        """Record the golden copy and its per-row checksums."""
        self._golden = np.array(weights, dtype=np.float64, copy=True)
        self._sums = self._row_sums(self._golden)

    def scrub(self, weights: np.ndarray) -> tuple[np.ndarray, int]:
        """Verify and repair an on-chip copy.

        Returns:
            ``(scrubbed weights, rows refetched)``.
        """
        if self._golden is None or self._sums is None:
            raise RuntimeError("scrub() before protect(): no golden copy")
        arr = np.asarray(weights, dtype=np.float64)
        if arr.shape != self._golden.shape:
            raise ValueError(
                f"weight shape {arr.shape} != protected {self._golden.shape}"
            )
        observed = self._row_sums(arr)
        bad = observed != self._sums
        refetched = int(bad.sum())
        self.rows_checked += int(observed.size)
        self.rows_refetched += refetched
        if not refetched:
            return arr, 0
        repaired = np.array(arr, copy=True)
        repaired[bad] = self._golden[bad]
        return repaired, refetched


@dataclass(frozen=True)
class AuditResult:
    """Outcome of one layer's sampled consistency audit.

    Attributes:
        samples: outputs recomputed by the Executor for the audit.
        misses: audited outputs that were dangerously misspeculated
            (marked insensitive, actually sensitive).
        miss_rate: ``misses / samples`` (0 when nothing was sampled).
    """

    samples: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.samples if self.samples else 0.0


@dataclass
class ConsistencyAuditor:
    """Sampled Speculator-vs-Executor agreement check.

    Attributes:
        sample_rate: fraction of *insensitive-marked* outputs the Executor
            recomputes per layer (audit work is billed to the guard, so the
            rate is kept small).
        seed: RNG seed for the sampling pattern.
        total_samples / total_misses: cumulative counters across layers.
    """

    sample_rate: float = 0.05
    seed: int = 0
    total_samples: int = 0
    total_misses: int = 0

    def __post_init__(self):
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in (0, 1], got {self.sample_rate}"
            )

    def audit(
        self,
        true_map: np.ndarray,
        observed_map: np.ndarray,
        layer_index: int = 0,
    ) -> AuditResult:
        """Audit one layer's map against ground truth.

        ``true_map`` is what a fault-free Speculator would have produced
        (in hardware: the Executor's recomputation of the sampled outputs);
        ``observed_map`` is the map the pipeline is about to consume.
        Only outputs marked insensitive are audited -- a spurious 1 bit
        costs cycles, never correctness.
        """
        true_bits = np.asarray(true_map).reshape(-1)
        observed = np.asarray(observed_map).reshape(-1)
        if true_bits.shape != observed.shape:
            raise ValueError(
                f"map shapes differ: {true_bits.shape} vs {observed.shape}"
            )
        candidates = np.flatnonzero(observed == 0)
        if candidates.size == 0:
            return AuditResult(0, 0)
        rng = np.random.default_rng((self.seed, layer_index))
        n = max(1, int(round(self.sample_rate * candidates.size)))
        picked = rng.choice(candidates, size=min(n, candidates.size), replace=False)
        misses = int((true_bits[picked] == 1).sum())
        result = AuditResult(samples=int(picked.size), misses=misses)
        self.total_samples += result.samples
        self.total_misses += result.misses
        return result

    def audit_counts(
        self,
        true_counts: np.ndarray,
        observed_counts: np.ndarray,
        hidden_size: int,
    ) -> AuditResult:
        """RNN variant: audit per-(step, gate) sensitive-row counts.

        A deficit (observed < true) means truly-sensitive rows were marked
        insensitive -- each is a dangerous miss.  The audit samples the
        insensitive-marked row population at the configured rate; the
        expected sampled miss count is reported (the RNN path audits
        aggregate counts, not individual row indices).
        """
        true_arr = np.asarray(true_counts, dtype=np.int64)
        observed = np.asarray(observed_counts, dtype=np.int64)
        if true_arr.shape != observed.shape:
            raise ValueError(
                f"count shapes differ: {true_arr.shape} vs {observed.shape}"
            )
        deficit = int(np.clip(true_arr - observed, 0, None).sum())
        population = int(np.clip(hidden_size - observed, 0, None).sum())
        if population == 0:
            return AuditResult(0, 0)
        samples = max(1, int(round(self.sample_rate * population)))
        misses = min(samples, int(round(self.sample_rate * deficit)))
        result = AuditResult(samples=samples, misses=misses)
        self.total_samples += result.samples
        self.total_misses += result.misses
        return result

    @property
    def estimated_miss_rate(self) -> float:
        """Cumulative audited misspeculation-rate estimate."""
        return (
            self.total_misses / self.total_samples if self.total_samples else 0.0
        )
