"""Graceful degradation: the stage ladder and its budget policy.

When the guards report trouble -- an audited misspeculation rate above
budget, repeated map-checksum failures, a flaky DRAM channel -- the right
response is not to crash but to *spend the faulting feature*: each DUET
evaluation stage (:data:`repro.sim.config.STAGES`) is also a rung on a
degradation ladder, because each stage removes exactly one class of
fault exposure:

=========  ==========================================================
``DUET``   full design -- exposed to every fault site
``IOS``    drops adaptive mapping (Reorder Unit out of the loop)
``BOS``    drops input switching -- IMap faults can no longer skip a
           needed MAC, closing the one value-corrupting map hazard
``OS``     output switching only, naive mapping
``BASE``   accurate-only -- the Speculator is out of the loop entirely;
           every output is computed by the Executor
=========  ==========================================================

The policy is deliberately **monotone**: it only ever steps down.  An
operator can re-arm a recovered machine; a policy that oscillates between
stages under a marginal fault rate would thrash the pipeline's
configuration mid-model.  Monotonicity also gives convergence for free --
with five rungs the stage is stable after at most four transitions, well
within one model pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reliability.report import DegradationEvent
from repro.sim.config import STAGES

__all__ = ["DegradationBudget", "DegradationPolicy", "DEGRADATION_LADDER"]

#: Stage order from most capable to fail-safe (reverse of STAGES).
DEGRADATION_LADDER: tuple[str, ...] = tuple(reversed(STAGES))


@dataclass(frozen=True)
class DegradationBudget:
    """Operating budgets; exceeding any of them triggers a step down.

    Attributes:
        max_misspeculation_rate: audited dangerous-miss rate tolerated per
            layer (the paper's quality contract is ~1% top-1; a 2% audited
            miss rate on a layer is well past what threshold re-tuning
            could absorb).
        max_checksum_failure_rate: fraction of a layer's map channels
            allowed to fail CRC before the transport is considered bad.  A
            *rate* rather than a count: CONV layers range from a handful of
            channels to hundreds, and the per-channel failure probability
            grows with channel area, so any absolute count either ignores
            small layers or condemns large ones.
        max_dram_unrecoverable: unrecoverable off-chip transfers tolerated
            per layer (retried-and-recovered transfers are free: they cost
            cycles, not trust).
    """

    max_misspeculation_rate: float = 0.02
    max_checksum_failure_rate: float = 0.25
    max_dram_unrecoverable: int = 0

    def __post_init__(self):
        if not 0.0 <= self.max_misspeculation_rate <= 1.0:
            raise ValueError(
                "max_misspeculation_rate must be in [0, 1], got "
                f"{self.max_misspeculation_rate}"
            )
        if not 0.0 <= self.max_checksum_failure_rate <= 1.0:
            raise ValueError(
                "max_checksum_failure_rate must be in [0, 1], got "
                f"{self.max_checksum_failure_rate}"
            )
        if self.max_dram_unrecoverable < 0:
            raise ValueError(
                f"max_dram_unrecoverable must be non-negative, got "
                f"{self.max_dram_unrecoverable}"
            )


@dataclass
class DegradationPolicy:
    """Monotone stage-ladder controller.

    Attributes:
        budget: the operating budgets.
        initial_stage: rung the run starts at (usually ``DUET``).
        current_stage: the live operating stage.
        events: transitions taken, in order.
    """

    budget: DegradationBudget = field(default_factory=DegradationBudget)
    initial_stage: str = "DUET"
    current_stage: str = field(init=False)
    events: list[DegradationEvent] = field(default_factory=list)

    def __post_init__(self):
        if self.initial_stage not in STAGES:
            raise ValueError(
                f"unknown stage {self.initial_stage!r}; expected one of {STAGES}"
            )
        self.current_stage = self.initial_stage

    @property
    def at_floor(self) -> bool:
        """True once the fail-safe accurate-only stage is reached."""
        return self.current_stage == DEGRADATION_LADDER[-1]

    def _violations(
        self,
        misspeculation_rate: float,
        checksum_failures: int,
        channels_checked: int,
        dram_unrecoverable: int,
    ) -> list[str]:
        b = self.budget
        violations = []
        if misspeculation_rate > b.max_misspeculation_rate:
            violations.append(
                f"audited misspeculation rate {misspeculation_rate:.3f} "
                f"exceeds budget {b.max_misspeculation_rate:.3f}"
            )
        if channels_checked:
            failure_rate = checksum_failures / channels_checked
            if failure_rate > b.max_checksum_failure_rate:
                violations.append(
                    f"map-checksum failure rate {failure_rate:.3f} "
                    f"({checksum_failures}/{channels_checked} channels) "
                    f"exceeds budget {b.max_checksum_failure_rate:.3f}"
                )
        if dram_unrecoverable > b.max_dram_unrecoverable:
            violations.append(
                f"{dram_unrecoverable} unrecoverable DRAM transfers exceed "
                f"budget {b.max_dram_unrecoverable}"
            )
        return violations

    def observe(
        self,
        layer_name: str,
        misspeculation_rate: float = 0.0,
        checksum_failures: int = 0,
        channels_checked: int = 0,
        dram_unrecoverable: int = 0,
    ) -> str:
        """Feed one layer's guard statistics; returns the stage to use for
        the *next* layer (stepped down once if any budget was exceeded)."""
        violations = self._violations(
            misspeculation_rate,
            checksum_failures,
            channels_checked,
            dram_unrecoverable,
        )
        if violations and not self.at_floor:
            rung = DEGRADATION_LADDER.index(self.current_stage)
            new_stage = DEGRADATION_LADDER[rung + 1]
            self.events.append(
                DegradationEvent(
                    layer=layer_name,
                    from_stage=self.current_stage,
                    to_stage=new_stage,
                    reason="; ".join(violations),
                )
            )
            self.current_stage = new_stage
        return self.current_stage
