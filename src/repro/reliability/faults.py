"""Composable, seeded fault models and the campaign registry.

Every fault model answers one question: *what does this physical failure
do to the data the dual-module pipeline consumes?*  The taxonomy follows
the paper's correctness contract (Section III-C): switching maps and the
Speculator may be wrong -- that costs accuracy -- but the Executor's
computed values and the pipeline's forward progress are sacrosanct.

Fault sites
-----------

- ``omap`` / ``imap``  -- bit flips in the switching / input-sparsity maps
  while they sit in the GLB or cross the NoC (transport faults, injected
  *after* the Speculator writes its checksum, so map guards can see them).
- ``speculator``       -- a systematic datapath bias inside the Speculator
  (miscalibrated quantizer, stuck adder-tree bit).  Injected *before* the
  checksum: the map is internally consistent and only the sampled
  Speculator-vs-Executor audit can detect the damage.
- ``weights``          -- corrupted words in the weight memory.
- ``dram``             -- transient transfer failures on the off-chip
  channel (retried with backoff by :class:`repro.sim.dram.Dram`).
- ``pe_row``           -- stuck-at PE rows in the Executor array.

All randomness derives from ``numpy`` generators seeded per
``(campaign seed, layer index, site)``, so a campaign is a pure function
of its seed -- the CLI report is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultModel",
    "OMapBitFlips",
    "IMapBitFlips",
    "WeightCorruption",
    "DramTransferFaults",
    "StuckAtRows",
    "BiasedSpeculator",
    "DramFaultStream",
    "FaultCampaign",
    "FaultInjector",
    "CAMPAIGNS",
    "get_campaign",
]


@dataclass(frozen=True)
class FaultModel:
    """Base class: one physical failure mode with its intensity knobs.

    Attributes:
        site: which interface the fault corrupts (see module docstring).
    """

    site = "abstract"


@dataclass(frozen=True)
class OMapBitFlips(FaultModel):
    """Flip each OMap bit independently with probability ``rate``."""

    rate: float = 0.01
    site = "omap"

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"flip rate must be in [0, 1], got {self.rate}")

    def corrupt(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(bits.shape) < self.rate
        return np.where(flips, 1 - bits, bits).astype(bits.dtype)


@dataclass(frozen=True)
class IMapBitFlips(FaultModel):
    """Flip each IMap bit independently with probability ``rate``.

    Unlike OMap flips, a 1->0 IMap flip is *value-corrupting* when input
    switching is enabled: a genuinely nonzero input is treated as zero and
    a needed MAC is skipped.  This is the fault class the map guards exist
    for.
    """

    rate: float = 0.01
    site = "imap"

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"flip rate must be in [0, 1], got {self.rate}")

    def corrupt(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(bits.shape) < self.rate
        return np.where(flips, 1 - bits, bits).astype(bits.dtype)


@dataclass(frozen=True)
class WeightCorruption(FaultModel):
    """Corrupt each weight word independently with probability ``rate``.

    A corrupted word has a high-order bit flipped, modelled as adding
    ``magnitude`` times the tensor's absolute scale -- large enough that an
    unguarded run visibly corrupts outputs, which is what the invariant
    tests must observe.
    """

    rate: float = 1e-3
    magnitude: float = 4.0
    site = "weights"

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1], got {self.rate}")
        if self.magnitude <= 0:
            raise ValueError(f"magnitude must be positive, got {self.magnitude}")

    def corrupt(
        self, weights: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        """Return ``(corrupted copy, number of corrupted words)``."""
        hits = rng.random(weights.shape) < self.rate
        if not hits.any():
            return weights.copy(), 0
        scale = float(np.abs(weights).max()) or 1.0
        signs = rng.choice((-1.0, 1.0), size=weights.shape)
        corrupted = np.where(
            hits, weights + signs * self.magnitude * scale, weights
        )
        return corrupted, int(hits.sum())


@dataclass(frozen=True)
class DramTransferFaults(FaultModel):
    """Each DRAM transfer attempt fails independently with ``rate``."""

    rate: float = 0.02
    site = "dram"

    def __post_init__(self):
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"failure rate must be in [0, 1), got {self.rate}")


@dataclass(frozen=True)
class StuckAtRows(FaultModel):
    """``count`` Executor PE rows are stuck (accumulators read zero)."""

    count: int = 1
    site = "pe_row"

    def __post_init__(self):
        if self.count < 0:
            raise ValueError(f"stuck-row count must be non-negative, got {self.count}")

    def pick_rows(self, total_rows: int, rng: np.random.Generator) -> frozenset[int]:
        count = min(self.count, max(0, total_rows - 1))  # keep one row alive
        if count == 0:
            return frozenset()
        return frozenset(
            int(r) for r in rng.choice(total_rows, size=count, replace=False)
        )


@dataclass(frozen=True)
class BiasedSpeculator(FaultModel):
    """Systematic bias of the Speculator datapath.

    ``bias`` shifts every approximate pre-activation; in map space a
    positive ReLU bias *under-speculates* -- truly-sensitive neurons near
    the threshold are marked insensitive and silently approximated.  The
    map-level model drops each sensitive bit with probability
    ``miss_rate``, reduced by the guard band (borderline neurons the band
    re-captures): ``miss_rate * bias / (bias + guard_band)``.
    """

    bias: float = 0.1
    miss_rate: float = 0.08
    site = "speculator"

    def __post_init__(self):
        if self.bias < 0:
            raise ValueError(f"bias must be non-negative, got {self.bias}")
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ValueError(f"miss_rate must be in [0, 1], got {self.miss_rate}")

    def effective_miss_rate(self, guard_band: float) -> float:
        """Miss probability after the guard band absorbs borderline errors."""
        if self.bias == 0:
            return 0.0
        return self.miss_rate * self.bias / (self.bias + guard_band)

    def corrupt(
        self, bits: np.ndarray, rng: np.random.Generator, guard_band: float = 0.0
    ) -> np.ndarray:
        """Drop sensitive bits at the effective miss rate."""
        rate = self.effective_miss_rate(guard_band)
        drops = (rng.random(bits.shape) < rate) & (bits > 0)
        return np.where(drops, 0, bits).astype(bits.dtype)


class DramFaultStream:
    """Buffered Bernoulli attempt stream for one flaky DRAM channel.

    Both execution paths of :class:`repro.sim.dram.Dram` consume this
    one object, and both see the *same* underlying uniform stream:

    - the per-event path calls :meth:`fails` once per transfer attempt
      (exactly what the old closure-based fault model did);
    - the vectorized path calls :meth:`failures` once per batch and gets
      every transfer's leading-failure count in one shot.

    Bit-identity rests on a numpy guarantee: ``Generator.random(n)``
    yields the same doubles as ``n`` sequential ``Generator.random()``
    calls, so pre-drawing uniform blocks and slicing them preserves the
    draw sequence no matter how consumption is batched.  A transfer with
    ``f`` leading failed attempts consumes ``min(f, R) + 1`` draws
    (its failures plus the success draw) unless it exhausts all
    ``R + 1`` attempts, which consumes exactly ``R + 1`` -- the same
    accounting :meth:`repro.sim.dram.Dram._transfer` performs one
    ``random()`` at a time.
    """

    #: uniform draws fetched per refill; any block size yields the same
    #: logical stream, this just amortises generator call overhead.
    BLOCK = 4096

    def __init__(self, rng: np.random.Generator, rate: float):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"failure rate must be in [0, 1), got {rate}")
        self.rng = rng
        self.rate = rate
        self._buffer = np.empty(0, dtype=np.float64)
        self._pos = 0

    def _ensure(self, n: int) -> np.ndarray:
        """A view of >= ``n`` buffered draws starting at the cursor."""
        available = len(self._buffer) - self._pos
        if available < n:
            fresh = self.rng.random(max(n - available, self.BLOCK))
            self._buffer = np.concatenate(
                (self._buffer[self._pos:], fresh)
            )
            self._pos = 0
        return self._buffer[self._pos:]

    def fails(self, direction: str, num_bytes: int, attempt: int) -> bool:
        """Per-event fault model: does this transfer attempt fail?

        Drop-in replacement for the closure
        :meth:`FaultInjector.dram_fault_model` used to return; attached
        to :attr:`repro.sim.dram.Dram.fault_model` so the per-event path
        needs no changes at all.
        """
        draw = self._ensure(1)[0]
        self._pos += 1
        return bool(draw < self.rate)

    def failures(self, n_transfers: int, max_retries: int) -> np.ndarray:
        """Leading-failure counts for the next ``n_transfers`` transfers.

        Returns an int64 array ``f`` with ``f[i]`` in ``[0, R + 1]``:
        ``f[i] <= R`` means transfer ``i`` succeeded after ``f[i]``
        retried attempts; ``f[i] == R + 1`` means it exhausted every
        attempt (unrecoverable).  Consumes exactly the draws the
        per-event path would have.
        """
        if n_transfers < 0:
            raise ValueError(f"n_transfers must be non-negative, got {n_transfers}")
        cap = max_retries + 1
        out = np.empty(n_transfers, dtype=np.int64)
        done = 0
        while done < n_transfers:
            remaining = n_transfers - done
            # enough for `remaining` all-success transfers, and always
            # enough to finish at least one transfer (progress bound)
            view = self._ensure(max(remaining, cap))
            succ = view >= self.rate
            if bool(succ[:remaining].all()):
                # common case, fully vectorized: every transfer's first
                # attempt succeeds and consumes exactly one draw
                out[done:] = 0
                self._pos += remaining
                return out
            # failures since the last success, *before* each draw
            idx = np.arange(len(view))
            last_succ = np.maximum.accumulate(np.where(succ, idx, -1))
            prev_succ = np.concatenate(([-1], last_succ[:-1]))
            prefail = idx - prev_succ - 1
            # a draw terminates a transfer iff it succeeds (f = leading
            # failures mod cap) or it is the cap-th consecutive failure
            # counted from the transfer's start (f = cap, exhausted)
            exhausted = ~succ & (prefail % cap == cap - 1)
            terminal = succ | exhausted
            term_pos = np.flatnonzero(terminal)
            take = min(remaining, len(term_pos))
            f_vals = np.where(
                exhausted[term_pos[:take]], cap, prefail[term_pos[:take]] % cap
            )
            out[done : done + take] = f_vals
            done += take
            # draws past the last emitted terminal belong to the next,
            # still-incomplete transfer: leave them buffered
            self._pos += int(term_pos[take - 1]) + 1
        return out


@dataclass(frozen=True)
class FaultCampaign:
    """A named, composable set of fault models applied together."""

    name: str
    description: str
    faults: tuple[FaultModel, ...] = ()

    def by_site(self, site: str) -> list[FaultModel]:
        """All fault models targeting ``site``."""
        return [f for f in self.faults if f.site == site]


#: Built-in campaigns, mild to severe.  ``smoke`` is the CI campaign: one
#: fault per site at rates low enough to finish fast but high enough that
#: every guard fires at least once on a paper-scale model.
CAMPAIGNS: dict[str, FaultCampaign] = {
    c.name: c
    for c in (
        FaultCampaign("none", "no faults (clean reference run)"),
        FaultCampaign(
            "smoke",
            "one mild fault per site -- the CI smoke campaign",
            (
                # map rates are per bit; a CONV1-sized channel holds ~1e4
                # bits, so 1e-5 keeps the per-channel CRC failure odds
                # around 10% -- every guard fires, no budget blows
                OMapBitFlips(rate=1e-5),
                IMapBitFlips(rate=1e-5),
                WeightCorruption(rate=1e-4),
                DramTransferFaults(rate=0.01),
                StuckAtRows(count=1),
                BiasedSpeculator(bias=0.05, miss_rate=0.02),
            ),
        ),
        FaultCampaign(
            "omap-flips",
            "transport bit flips in the switching maps",
            (OMapBitFlips(rate=0.05), IMapBitFlips(rate=0.05)),
        ),
        FaultCampaign(
            "dram-flaky",
            "transient off-chip transfer failures",
            (DramTransferFaults(rate=0.15),),
        ),
        FaultCampaign(
            "speculator-bias",
            "systematically biased Speculator datapath",
            (BiasedSpeculator(bias=0.5, miss_rate=0.3),),
        ),
        FaultCampaign(
            "stuck-pe",
            "stuck-at Executor PE rows",
            (StuckAtRows(count=3),),
        ),
        FaultCampaign(
            "weight-mem",
            "corrupted weight-memory words",
            (WeightCorruption(rate=0.01, magnitude=8.0),),
        ),
        FaultCampaign(
            "severe",
            "everything at once, hard enough to force degradation to BASE",
            (
                OMapBitFlips(rate=0.2),
                IMapBitFlips(rate=0.2),
                WeightCorruption(rate=0.02, magnitude=8.0),
                DramTransferFaults(rate=0.4),
                StuckAtRows(count=4),
                BiasedSpeculator(bias=1.0, miss_rate=0.5),
            ),
        ),
    )
}


def get_campaign(name: str) -> FaultCampaign:
    """Look up a built-in campaign by name.

    Raises:
        ValueError: naming the unknown campaign and the valid choices.
    """
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault campaign {name!r}; expected one of "
            f"{sorted(CAMPAIGNS)}"
        ) from None


@dataclass
class FaultInjector:
    """Applies a campaign's faults deterministically, site by site.

    One injector serves one simulated run.  Per-layer random streams are
    derived from ``(seed, layer index, site)``, so injecting into layer 7
    never perturbs what layer 8 sees -- campaigns compose and tests can
    bisect.

    Attributes:
        campaign: the fault set to apply.
        seed: base seed of every derived stream.
        injected: cumulative count of injected faults per site.
    """

    campaign: FaultCampaign
    seed: int = 0
    injected: dict[str, int] = field(default_factory=dict)

    _SITE_STREAMS = {
        "omap": 1,
        "imap": 2,
        "weights": 3,
        "dram": 4,
        "pe_row": 5,
        "speculator": 6,
    }

    def _rng(self, layer_index: int, site: str) -> np.random.Generator:
        return np.random.default_rng(
            (self.seed, layer_index, self._SITE_STREAMS[site])
        )

    def _count(self, site: str, n: int) -> None:
        if n:
            self.injected[site] = self.injected.get(site, 0) + int(n)

    # -- map faults ---------------------------------------------------------

    def speculate_omap(
        self, omap: np.ndarray, layer_index: int, guard_band: float = 0.0
    ) -> np.ndarray:
        """The OMap as the (possibly biased) Speculator produces it.

        Applied before any checksum is computed -- a biased Speculator
        checksums its own wrong map.
        """
        result = omap
        for fault in self.campaign.by_site("speculator"):
            rng = self._rng(layer_index, "speculator")
            corrupted = fault.corrupt(result, rng, guard_band=guard_band)
            self._count("speculator", int((corrupted != result).sum()))
            result = corrupted
        return result

    def corrupt_omap(self, omap: np.ndarray, layer_index: int) -> np.ndarray:
        """Transport bit flips after the map was checksummed."""
        result = omap
        for fault in self.campaign.by_site("omap"):
            rng = self._rng(layer_index, "omap")
            corrupted = fault.corrupt(result, rng)
            self._count("omap", int((corrupted != result).sum()))
            result = corrupted
        return result

    def corrupt_imap(self, imap: np.ndarray, layer_index: int) -> np.ndarray:
        """Transport bit flips in the input-sparsity map."""
        result = imap
        for fault in self.campaign.by_site("imap"):
            rng = self._rng(layer_index, "imap")
            corrupted = fault.corrupt(result, rng)
            self._count("imap", int((corrupted != result).sum()))
            result = corrupted
        return result

    def speculate_rnn_counts(
        self, counts: np.ndarray, layer_index: int, guard_band: float = 0.0
    ) -> np.ndarray:
        """Sensitive counts as the (possibly biased) Speculator reports
        them -- bias drops sensitive rows before any checksum exists."""
        result = counts.astype(np.int64)
        for fault in self.campaign.by_site("speculator"):
            rng = self._rng(layer_index, "speculator")
            rate = fault.effective_miss_rate(guard_band)
            dropped = rng.binomial(result.clip(min=0), rate)
            self._count("speculator", int(dropped.sum()))
            result = result - dropped
        return result

    def corrupt_rnn_counts(
        self, counts: np.ndarray, hidden_size: int, layer_index: int
    ) -> np.ndarray:
        """Transport faults in the count words after they were
        checksummed.  Results clamp to ``[0, hidden_size]`` -- the hardware
        registers cannot hold more."""
        result = counts.astype(np.int64)
        for fault in self.campaign.by_site("omap"):
            rng = self._rng(layer_index, "omap")
            flips = rng.binomial(hidden_size, fault.rate, size=result.shape)
            signs = rng.choice((-1, 1), size=result.shape)
            self._count("omap", int(flips.sum()))
            result = result + signs * flips
        return result.clip(0, hidden_size)

    # -- memory / datapath faults -------------------------------------------

    def corrupt_weights(
        self, weights: np.ndarray, layer_index: int
    ) -> np.ndarray:
        """Corrupted copy of a weight tensor."""
        result = np.asarray(weights, dtype=np.float64)
        for fault in self.campaign.by_site("weights"):
            rng = self._rng(layer_index, "weights")
            result, n = fault.corrupt(result, rng)
            self._count("weights", n)
        return result

    def weight_fault_count(self, weight_elements: int, layer_index: int) -> int:
        """Corrupted words in a weight tensor of ``weight_elements`` words.

        The analytical pipelines never materialise trained weights, so the
        weight-memory site is accounted by count: a binomial draw from the
        same ``(seed, layer, site)`` stream :meth:`corrupt_weights` uses on
        real tensors.
        """
        count = 0
        for fault in self.campaign.by_site("weights"):
            rng = self._rng(layer_index, "weights")
            count += int(rng.binomial(weight_elements, fault.rate))
        self._count("weights", count)
        return count

    def stuck_rows(self, total_rows: int, layer_index: int = 0) -> frozenset[int]:
        """Stuck PE rows for this run (stable across layers: silicon faults
        do not move)."""
        rows: set[int] = set()
        for fault in self.campaign.by_site("pe_row"):
            rng = self._rng(layer_index, "pe_row")
            picked = fault.pick_rows(total_rows, rng)
            self._count("pe_row", len(picked - rows))
            rows |= picked
        return frozenset(rows)

    def dram_fault_model(self, stream: int = 0):
        """A ``(direction, nbytes, attempt) -> bool`` fault model for one
        DRAM channel, or None when the campaign has no DRAM faults.

        Failed attempts are *not* tallied in :attr:`injected` -- the
        :class:`repro.sim.dram.Dram` counters are authoritative for the
        channel (the reliability context folds them into its per-layer
        records), and counting in both places would double-bill.
        """
        faults = self.campaign.by_site("dram")
        if not faults:
            return None
        rng = self._rng(stream, "dram")
        rate = max(f.rate for f in faults)

        def fails(direction: str, num_bytes: int, attempt: int) -> bool:
            return bool(rng.random() < rate)

        return fails

    def dram_fault_stream(self, stream: int = 0) -> DramFaultStream | None:
        """The campaign's DRAM channel faults as a :class:`DramFaultStream`.

        Derives the *same* ``(seed, stream, "dram")`` generator and the
        same max-rate composition as :meth:`dram_fault_model`, so a
        stream-backed channel replays the closure-backed one draw for
        draw -- but also serves the vectorized bulk path.  Returns None
        when the campaign has no DRAM faults.  Like the closure, failed
        attempts are tallied by the :class:`repro.sim.dram.Dram`
        counters, not in :attr:`injected`.
        """
        faults = self.campaign.by_site("dram")
        if not faults:
            return None
        return DramFaultStream(
            self._rng(stream, "dram"), max(f.rate for f in faults)
        )

    @property
    def total_injected(self) -> int:
        """All faults injected so far, across sites."""
        return sum(self.injected.values())
