"""Result structures of the reliability layer.

These are deliberately free of imports from :mod:`repro.sim` so that
:mod:`repro.sim.report` can reference them without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LayerReliability", "DegradationEvent", "ReliabilityReport"]


@dataclass
class LayerReliability:
    """Per-layer reliability account.

    Attributes:
        name: layer name.
        stage: the operating stage the layer executed at.
        injected: faults injected into this layer, keyed by site.
        checksum_failures: map channels whose CRC failed verification.
        channels_checked: map channels the guards verified.
        repaired_channels: channels degraded to fail-safe dense.
        audit_samples / audit_misses: consistency-audit outcome.
        misspeculation_rate: audited estimate of the fraction of the
            layer's outputs dangerously misspeculated (the audit's
            conditional miss rate weighted by the insensitive-marked
            fraction) -- the signal the degradation policy consumes.
        missed_sensitive: truly-sensitive outputs the consumed map still
            marked insensitive (quality loss, never value corruption).
        total_sensitive: truly-sensitive outputs of the layer.
        value_hazards: faults that *would* corrupt computed values if no
            guard intervened (IMap 1->0 flips consumed under input
            switching, unrecoverable DRAM transfers, unrouted stuck rows).
            With guards enabled this must be zero -- the tests assert it.
        dram_retries / dram_unrecoverable: off-chip retry activity.
        recovery_actions: guard interventions taken for this layer.
    """

    name: str
    stage: str
    injected: dict[str, int] = field(default_factory=dict)
    checksum_failures: int = 0
    channels_checked: int = 0
    repaired_channels: int = 0
    audit_samples: int = 0
    audit_misses: int = 0
    misspeculation_rate: float = 0.0
    missed_sensitive: int = 0
    total_sensitive: int = 0
    value_hazards: int = 0
    dram_retries: int = 0
    dram_unrecoverable: int = 0
    recovery_actions: int = 0


@dataclass(frozen=True)
class DegradationEvent:
    """One step down the degradation ladder."""

    layer: str
    from_stage: str
    to_stage: str
    reason: str


@dataclass
class ReliabilityReport:
    """Whole-run reliability account attached to a ModelReport.

    Attributes:
        campaign: name of the fault campaign applied.
        seed: campaign seed (the run is a pure function of it).
        guards_enabled: whether the online guards were active.
        initial_stage / final_stage: operating stages before and after
            degradation.
        layers: per-layer accounts, in execution order.
        events: degradation transitions, in order.
    """

    campaign: str
    seed: int
    guards_enabled: bool
    initial_stage: str
    final_stage: str
    layers: list[LayerReliability] = field(default_factory=list)
    events: list[DegradationEvent] = field(default_factory=list)

    @property
    def total_injected(self) -> dict[str, int]:
        """Injected fault counts summed over layers, keyed by site."""
        totals: dict[str, int] = {}
        for layer in self.layers:
            for site, n in layer.injected.items():
                totals[site] = totals.get(site, 0) + n
        return totals

    @property
    def total_value_hazards(self) -> int:
        """Value hazards that reached the Executor (0 under guards)."""
        return sum(layer.value_hazards for layer in self.layers)

    @property
    def total_recovery_actions(self) -> int:
        """All guard interventions across the run."""
        return sum(layer.recovery_actions for layer in self.layers)

    @property
    def total_dram_retries(self) -> int:
        return sum(layer.dram_retries for layer in self.layers)

    @property
    def total_dram_unrecoverable(self) -> int:
        return sum(layer.dram_unrecoverable for layer in self.layers)

    @property
    def misspeculation_rate(self) -> float:
        """Run-level audited dangerous-miss estimate."""
        samples = sum(layer.audit_samples for layer in self.layers)
        misses = sum(layer.audit_misses for layer in self.layers)
        return misses / samples if samples else 0.0

    @property
    def quality_retained(self) -> float:
        """Fraction of truly-sensitive outputs that were computed
        accurately (1.0 = no silent quality loss)."""
        sensitive = sum(layer.total_sensitive for layer in self.layers)
        missed = sum(layer.missed_sensitive for layer in self.layers)
        return 1.0 - missed / sensitive if sensitive else 1.0

    @property
    def values_never_corrupted(self) -> bool:
        """The analytical form of the core invariant."""
        return self.total_value_hazards == 0
