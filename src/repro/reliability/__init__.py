"""Fault injection, online guards, and graceful degradation.

The dual-module design has a built-in asymmetry the paper leans on for
efficiency and this package leans on for robustness: the Speculator and
its switching maps are *advisory*.  When they are wrong the accelerator
loses efficiency or output quality -- never the values the Executor
computed, and never forward progress.  The subsystem has four parts:

- :mod:`~repro.reliability.faults` -- composable, seeded fault models
  (map bit flips, weight-memory corruption, DRAM transfer errors, stuck
  PE rows, Speculator bias) grouped into named campaigns.
- :mod:`~repro.reliability.guards` -- map checksums with fail-safe dense
  fallback, weight-memory scrubbing, and the sampled
  Speculator-vs-Executor consistency audit.
- :mod:`~repro.reliability.degrade` -- the monotone stage-ladder policy
  (DUET -> IOS -> BOS -> OS -> BASE) driven by audit and guard budgets.
- :mod:`~repro.reliability.runner` -- campaign runner: the analytical
  degradation run plus the MAC-level invariant probe, rendered by
  ``python -m repro faults``.
- :mod:`~repro.reliability.workerfaults` -- seeded worker/fleet fault
  streams (crash, hang, straggle) consumed by the fault-tolerant serving
  tier (:mod:`repro.serving.faulttol`).
"""

from repro.reliability.context import GuardSettings, ReliabilityContext
from repro.reliability.degrade import (
    DEGRADATION_LADDER,
    DegradationBudget,
    DegradationPolicy,
)
from repro.reliability.faults import (
    CAMPAIGNS,
    BiasedSpeculator,
    DramTransferFaults,
    FaultCampaign,
    FaultInjector,
    IMapBitFlips,
    OMapBitFlips,
    StuckAtRows,
    WeightCorruption,
    get_campaign,
)
from repro.reliability.guards import (
    ConsistencyAuditor,
    MapGuard,
    WeightMemoryScrubber,
    map_checksum,
    row_checksums,
)
from repro.reliability.runner import run_fault_campaign, run_functional_probe

__all__ = [
    "BiasedSpeculator",
    "CAMPAIGNS",
    "ConsistencyAuditor",
    "DEGRADATION_LADDER",
    "DegradationBudget",
    "DegradationPolicy",
    "DramTransferFaults",
    "FaultCampaign",
    "FaultInjector",
    "GuardSettings",
    "IMapBitFlips",
    "MapGuard",
    "OMapBitFlips",
    "ReliabilityContext",
    "StuckAtRows",
    "WeightCorruption",
    "WeightMemoryScrubber",
    "get_campaign",
    "map_checksum",
    "row_checksums",
    "run_fault_campaign",
    "run_functional_probe",
]
