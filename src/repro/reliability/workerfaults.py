"""Seeded worker/fleet fault models: crash, hang, straggle.

PR 2's fault taxonomy covers failures *inside* one accelerator (bit
flips, flaky DRAM, stuck PE rows).  This module models the next level
up -- the failures of the *machines* the serving tier dispatches batches
to.  Three fates, drawn once per dispatched batch:

- **crash**: the worker process dies partway through the batch; the
  in-flight batch is lost and the worker stays dead until the health
  checker evicts and cold-restarts it.
- **hang**: the batch never completes (wedged driver, deadlocked
  runtime); the worker stops answering heartbeats but holds its slot
  until evicted and warm-restarted.
- **straggle**: the batch completes, but ``straggle_multiplier`` times
  slower than priced (thermal throttling, a noisy neighbour).

All randomness follows the :class:`~repro.reliability.faults.DramFaultStream`
discipline: per-worker generators descend from one root seed through
``numpy.random.SeedSequence.spawn``, so worker ``w``'s fate sequence is a
pure function of ``(seed, w)`` -- independent of every sibling, of the
dispatch interleaving across workers, and of any ``--jobs`` value.  A
respawned worker continues its slot's stream: fates are a property of
the slot's schedule, not of the incarnation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FATE_OK",
    "FATE_CRASH",
    "FATE_HANG",
    "FATE_STRAGGLE",
    "WorkerFate",
    "WorkerFaultModel",
    "WorkerFaultStream",
    "spawn_worker_streams",
]

#: Fate of a dispatched batch: served at the priced service time.
FATE_OK = "ok"
#: Fate: the worker dies mid-batch; the batch is lost.
FATE_CRASH = "crash"
#: Fate: the batch never completes until recovery machinery intervenes.
FATE_HANG = "hang"
#: Fate: the batch completes ``straggle_multiplier`` times slower.
FATE_STRAGGLE = "straggle"


@dataclass(frozen=True)
class WorkerFate:
    """One drawn fate.

    Attributes:
        kind: one of the ``FATE_*`` constants.
        crash_fraction: for crashes, how far through the priced service
            time the worker dies (uniform in ``[0, 1)``); 0.0 otherwise.
    """

    kind: str
    crash_fraction: float = 0.0


@dataclass(frozen=True)
class WorkerFaultModel:
    """Per-dispatch fault probabilities of a worker fleet.

    Attributes:
        crash_rate / hang_rate / straggle_rate: per-dispatched-batch
            probabilities of each fate (the remainder is ``ok``).
        straggle_multiplier: service-time multiplier of a straggling
            batch (>= 1).
        hot_workers: number of low-numbered worker slots whose fault
            rates are multiplied by ``hot_multiplier`` -- the "lemon"
            machines a per-worker circuit breaker exists to isolate.
        hot_multiplier: fault-rate multiplier of the hot slots (>= 1).
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    straggle_rate: float = 0.0
    straggle_multiplier: float = 4.0
    hot_workers: int = 0
    hot_multiplier: float = 1.0

    def __post_init__(self):
        for name in ("crash_rate", "hang_rate", "straggle_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"WorkerFaultModel.{name} must be in [0, 1], got {value}"
                )
        if self.straggle_multiplier < 1.0:
            raise ValueError(
                f"WorkerFaultModel.straggle_multiplier must be >= 1, got "
                f"{self.straggle_multiplier}"
            )
        if self.hot_workers < 0:
            raise ValueError(
                f"WorkerFaultModel.hot_workers must be >= 0, got "
                f"{self.hot_workers}"
            )
        if self.hot_multiplier < 1.0:
            raise ValueError(
                f"WorkerFaultModel.hot_multiplier must be >= 1, got "
                f"{self.hot_multiplier}"
            )
        if self.total_rate(hot=True) >= 1.0:
            raise ValueError(
                "WorkerFaultModel rates (after the hot multiplier) must sum "
                f"below 1.0 so every dispatch can succeed, got "
                f"{self.total_rate(hot=True)}"
            )

    @property
    def faulty(self) -> bool:
        """Whether any fate other than ``ok`` can be drawn."""
        return (self.crash_rate + self.hang_rate + self.straggle_rate) > 0.0

    def total_rate(self, hot: bool = False) -> float:
        """Summed non-ok probability for a normal (or hot) worker."""
        scale = self.hot_multiplier if hot else 1.0
        return scale * (self.crash_rate + self.hang_rate + self.straggle_rate)

    def rates_for(self, worker: int) -> tuple[float, float, float]:
        """``(crash, hang, straggle)`` probabilities of worker slot ``worker``."""
        scale = self.hot_multiplier if worker < self.hot_workers else 1.0
        return (
            scale * self.crash_rate,
            scale * self.hang_rate,
            scale * self.straggle_rate,
        )


class WorkerFaultStream:
    """The seeded fate stream of one worker slot.

    Draws two uniforms per dispatch -- the fate selector and the crash
    fraction -- so the stream's consumption is independent of which fate
    was drawn, keeping fate ``k`` of slot ``w`` a pure function of
    ``(seed, w, k)``.
    """

    def __init__(
        self, rng: np.random.Generator, model: WorkerFaultModel, worker: int
    ):
        if worker < 0:
            raise ValueError(f"worker slot must be >= 0, got {worker}")
        self.rng = rng
        self.model = model
        self.worker = worker
        self.drawn = 0

    def draw_fate(self) -> WorkerFate:
        """The fate of this slot's next dispatched batch."""
        selector = float(self.rng.random())
        fraction = float(self.rng.random())
        self.drawn += 1
        crash, hang, straggle = self.model.rates_for(self.worker)
        if selector < crash:
            return WorkerFate(FATE_CRASH, crash_fraction=fraction)
        if selector < crash + hang:
            return WorkerFate(FATE_HANG)
        if selector < crash + hang + straggle:
            return WorkerFate(FATE_STRAGGLE)
        return WorkerFate(FATE_OK)


def spawn_worker_streams(
    seed: int, workers: int, model: WorkerFaultModel
) -> tuple[list[WorkerFaultStream], np.random.Generator]:
    """Per-slot fault streams plus the policy jitter generator.

    ``SeedSequence(seed).spawn(workers + 1)`` children seed the streams
    (child ``w`` -> slot ``w``) and the trailing child seeds the
    generator the retry machinery uses for backoff jitter -- all
    prefix-stable, so adding workers never reshuffles existing slots.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    children = np.random.SeedSequence(seed).spawn(workers + 1)
    streams = [
        WorkerFaultStream(np.random.default_rng(children[w]), model, w)
        for w in range(workers)
    ]
    return streams, np.random.default_rng(children[workers])
