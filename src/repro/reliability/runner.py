"""Campaign runner: degradation run + functional invariant probe.

:func:`run_fault_campaign` exercises one fault campaign against one
benchmark model from two independent angles:

1. **Analytical degradation run** -- the real dataflow pipeline
   (:class:`repro.sim.accelerator.DuetAccelerator`) executes the model
   under a :class:`~repro.reliability.context.ReliabilityContext`: faults
   hit every layer's maps/counts and the DRAM channel, guards repair what
   they can, and the degradation policy steps the stage ladder down when
   budgets blow.  This produces the :class:`ReliabilityReport` with the
   run's whole account.

2. **Functional invariant probe** -- a small CONV layer executed MAC by
   MAC on the :class:`~repro.sim.functional.FunctionalExecutorArray`,
   with the same campaign's faults applied to its maps, weights, and PE
   rows.  The probe diffs the faulty-but-guarded output against a clean
   dense reference at every position the consumed map computed: the
   numerical form of the correctness contract ("computed values are never
   corrupted").  Campaigns run with guards disabled are *expected* to
   corrupt the probe -- that asymmetry is what the tests pin down.

Both angles are pure functions of ``(model, campaign, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.models.registry import get_model_spec
from repro.reliability.context import GuardSettings, ReliabilityContext
from repro.reliability.degrade import DegradationBudget
from repro.reliability.faults import FaultCampaign, FaultInjector, get_campaign
from repro.reliability.guards import MapGuard, WeightMemoryScrubber
from repro.reliability.report import ReliabilityReport
from repro.sim.config import DuetConfig
from repro.sim.functional import FunctionalExecutorArray
from repro.workloads.sparsity import SparsityModel

__all__ = [
    "FunctionalProbe",
    "CampaignReport",
    "run_fault_campaign",
    "run_functional_probe",
]


@dataclass(frozen=True)
class FunctionalProbe:
    """Outcome of the MAC-level invariant probe.

    Attributes:
        positions_checked: output positions the consumed OMap computed.
        mismatches: checked positions whose value differs from the clean
            dense reference.
        values_corrupted: ``mismatches > 0`` -- the functional form of the
            invariant (must be False whenever guards are enabled).
    """

    positions_checked: int
    mismatches: int

    @property
    def values_corrupted(self) -> bool:
        return self.mismatches > 0


@dataclass
class CampaignReport:
    """Everything one campaign run produced, with a CLI rendering."""

    model: str
    campaign: str
    seed: int
    guards_enabled: bool
    reliability: ReliabilityReport
    probe: FunctionalProbe
    latency_ms: float

    @property
    def invariant_held(self) -> bool:
        """True when neither angle observed a corrupted computed value."""
        return (
            self.reliability.values_never_corrupted
            and not self.probe.values_corrupted
        )

    def format(self) -> str:
        """Multi-line degradation report for the CLI."""
        r = self.reliability
        lines = [
            f"fault campaign {self.campaign!r} on {self.model} "
            f"(seed {self.seed}, guards {'on' if self.guards_enabled else 'off'})",
        ]
        injected = r.total_injected
        if injected:
            per_site = ", ".join(
                f"{site}={n}" for site, n in sorted(injected.items())
            )
            lines.append(
                f"  faults injected      : {per_site} "
                f"(total {sum(injected.values())})"
            )
        else:
            lines.append("  faults injected      : none")
        checksum_failures = sum(layer.checksum_failures for layer in r.layers)
        repaired = sum(layer.repaired_channels for layer in r.layers)
        lines.append(
            f"  guard recoveries     : {r.total_recovery_actions} "
            f"({checksum_failures} checksum failures, "
            f"{repaired} channels to fail-safe)"
        )
        lines.append(
            f"  dram                 : {r.total_dram_retries} retries, "
            f"{r.total_dram_unrecoverable} unrecoverable"
        )
        lines.append(
            f"  audited misspec rate : {r.misspeculation_rate:.4f}"
        )
        if r.events:
            lines.append(
                f"  degradation          : {r.initial_stage} -> {r.final_stage} "
                f"in {len(r.events)} step(s)"
            )
            for event in r.events:
                lines.append(
                    f"    after {event.layer}: {event.from_stage} -> "
                    f"{event.to_stage} ({event.reason})"
                )
        else:
            lines.append(
                f"  degradation          : none (stayed at {r.final_stage})"
            )
        lines.append(
            f"  quality retained     : {100.0 * r.quality_retained:.2f}% of "
            "sensitive outputs computed accurately"
        )
        lines.append(f"  latency              : {self.latency_ms:.3f} ms")
        verdict = "PASS" if self.invariant_held else "VIOLATED"
        lines.append(
            f"  values-never-corrupted invariant: {verdict} "
            f"(analytical hazards {r.total_value_hazards}; functional probe "
            f"{self.probe.mismatches}/{self.probe.positions_checked} "
            "positions corrupted)"
        )
        return "\n".join(lines)


def _probe_config() -> DuetConfig:
    """A small array the MAC-by-MAC probe can afford."""
    return replace(DuetConfig(), executor_rows=4, executor_cols=4)


def run_functional_probe(
    campaign: FaultCampaign | str,
    seed: int = 0,
    guards: GuardSettings | None = None,
) -> FunctionalProbe:
    """Execute the MAC-level invariant probe for one campaign.

    A small CONV layer runs twice on the functional PE array: once clean
    and dense (the reference), once with the campaign's faults applied to
    its switching maps, weight memory, and PE rows -- guarded or not per
    ``guards.enabled``.  Every position the consumed OMap computed is
    diffed against the reference.
    """
    if isinstance(campaign, str):
        campaign = get_campaign(campaign)
    guards = guards if guards is not None else GuardSettings()
    cfg = _probe_config()
    injector = FaultInjector(campaign, seed)
    rng = np.random.default_rng((seed, 0xB10B))

    c_in, c_out, size, kernel = 3, 8, 8, 3
    x = rng.normal(size=(c_in, size, size))
    x *= rng.random(x.shape) < 0.7  # realistic input sparsity
    weight = rng.normal(size=(c_out, c_in, kernel, kernel))
    out = size - kernel + 1
    true_omap = (rng.random((c_out, out, out)) < 0.6).astype(np.int64)
    true_imap = (x != 0).astype(np.int64)  # exact: masking by it is lossless

    # clean dense reference: every output computed, nothing skipped
    reference = FunctionalExecutorArray(cfg).run_conv(
        x, weight, np.ones_like(true_omap)
    )

    # the faulty path: speculate -> checksum -> transport -> verify,
    # mirroring ReliabilityContext._guard_maps at the value level
    band = guards.guard_band if guards.enabled else 0.0
    omap = injector.speculate_omap(true_omap, 0, band)
    omap_guard, imap_guard = MapGuard(), MapGuard()
    omap_sums = omap_guard.protect(omap) if guards.enabled else None
    imap_sums = imap_guard.protect(true_imap) if guards.enabled else None
    omap = injector.corrupt_omap(omap, 0)
    imap = injector.corrupt_imap(true_imap, 0)
    if guards.enabled:
        omap, _ = omap_guard.validate(omap, omap_sums)
        imap, _ = imap_guard.validate(imap, imap_sums)

    corrupted_weight = injector.corrupt_weights(weight, 0)
    if guards.enabled:
        scrubber = WeightMemoryScrubber()
        scrubber.protect(weight)
        used_weight, _ = scrubber.scrub(corrupted_weight)
    else:
        used_weight = corrupted_weight

    stuck = injector.stuck_rows(cfg.executor_rows)
    faulty = FunctionalExecutorArray(cfg).run_conv(
        x,
        used_weight,
        omap,
        imap=imap,
        stuck_rows=stuck,
        route_around_faults=guards.enabled,
    )

    computed = np.asarray(omap).astype(bool)
    diff = np.abs(faulty.output - reference.output)[computed]
    return FunctionalProbe(
        positions_checked=int(computed.sum()),
        mismatches=int((diff > 1e-9).sum()),
    )


def run_fault_campaign(
    model: str = "resnet18",
    campaign: FaultCampaign | str = "smoke",
    seed: int = 0,
    guards: GuardSettings | None = None,
    budget: DegradationBudget | None = None,
    initial_stage: str = "DUET",
    config: DuetConfig | None = None,
) -> CampaignReport:
    """Run one fault campaign end to end.

    Args:
        model: registered benchmark model name.
        campaign: campaign object or built-in campaign name.
        seed: seeds the fault injector, the audit sampling, and the
            workload sparsity draw -- the whole report is a pure function
            of ``(model, campaign, seed)``.
        guards: guard settings (pass ``GuardSettings(enabled=False)`` for
            the unguarded foil).
        budget: degradation budgets.
        initial_stage: ladder rung the run starts at.
        config: base hardware config (defaults to the paper's).

    Returns:
        A :class:`CampaignReport`.
    """
    from repro.sim.accelerator import DuetAccelerator

    spec = get_model_spec(model)
    guards = guards if guards is not None else GuardSettings()
    ctx = ReliabilityContext(
        campaign=campaign,
        seed=seed,
        guards=guards,
        budget=budget,
        initial_stage=initial_stage,
    )
    acc = DuetAccelerator(
        config=config,
        sparsity=SparsityModel(seed=seed),
        reliability=ctx,
    )
    sim_report = acc.run(spec)
    probe = run_functional_probe(ctx.campaign, seed=seed, guards=guards)
    return CampaignReport(
        model=model,
        campaign=ctx.campaign.name,
        seed=seed,
        guards_enabled=guards.enabled,
        reliability=sim_report.reliability,
        probe=probe,
        latency_ms=sim_report.latency_ms,
    )
