"""ReliabilityContext: the object the dataflow pipelines talk to.

One context serves one simulated run.  The pipeline asks it three things,
once per layer:

1. ``effective_config(base)`` -- the hardware configuration for the layer,
   i.e. the base config stepped down to the degradation policy's current
   stage;
2. ``process_cnn_workload`` / ``process_rnn_workload`` -- inject the
   campaign's faults into the layer's maps, run the guards over the
   result, audit the survivors, and hand back the workload the (possibly
   faulty, possibly repaired) hardware would actually consume;
3. ``finalize_layer`` -- fold in the DRAM retry counters and let the
   degradation policy pick the stage for the *next* layer.

The division of labour keeps the pipelines ignorant of fault mechanics:
with ``reliability=None`` they run exactly the original fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.reliability.degrade import DegradationBudget, DegradationPolicy
from repro.reliability.faults import FaultCampaign, FaultInjector, get_campaign
from repro.reliability.guards import ConsistencyAuditor, MapGuard, row_checksums
from repro.reliability.report import LayerReliability, ReliabilityReport
from repro.sim.config import DuetConfig, stage_config
from repro.sim.dram import Dram, TransferRetryPolicy
from repro.workloads.sparsity import (
    CnnLayerWorkload,
    FcLayerWorkload,
    RnnLayerWorkload,
)

__all__ = ["GuardSettings", "ReliabilityContext"]


@dataclass(frozen=True)
class GuardSettings:
    """Knobs of the online guard machinery.

    Attributes:
        enabled: master switch; with guards disabled the faults flow
            straight into the pipeline (the naive hardware the reliability
            tests use as their foil).
        guard_band: hysteresis margin around the switching threshold (see
            :func:`repro.core.switching.switching_map`); absorbs part of a
            Speculator bias before it becomes misspeculation.
        audit_sample_rate: fraction of insensitive-marked outputs the
            consistency audit recomputes per layer.
        retry_policy: DRAM retry-with-backoff parameters.
    """

    enabled: bool = True
    guard_band: float = 0.1
    audit_sample_rate: float = 0.05
    retry_policy: TransferRetryPolicy = field(default_factory=TransferRetryPolicy)


class ReliabilityContext:
    """Fault injection + guards + degradation for one simulated run.

    Args:
        campaign: a :class:`FaultCampaign` or the name of a built-in one.
        seed: base seed; the whole run is a pure function of it.
        guards: guard settings (defaults to guards enabled).
        budget: degradation budgets (defaults are conservative).
        initial_stage: ladder rung the run starts at.
    """

    def __init__(
        self,
        campaign: FaultCampaign | str = "none",
        seed: int = 0,
        guards: GuardSettings | None = None,
        budget: DegradationBudget | None = None,
        initial_stage: str = "DUET",
    ):
        if isinstance(campaign, str):
            campaign = get_campaign(campaign)
        self.campaign = campaign
        self.seed = seed
        self.guards = guards if guards is not None else GuardSettings()
        self.injector = FaultInjector(campaign, seed)
        self.policy = DegradationPolicy(
            budget if budget is not None else DegradationBudget(),
            initial_stage=initial_stage,
        )
        self.auditor = ConsistencyAuditor(
            sample_rate=self.guards.audit_sample_rate, seed=seed
        )
        self.omap_guard = MapGuard()
        self.imap_guard = MapGuard()
        self.layers: list[LayerReliability] = []
        self._pending: LayerReliability | None = None
        self._snapshot: dict[str, int] = {}
        self._dram: Dram | None = None
        self._dram_marks = (0, 0, 0)  # retries, failed, unrecoverable
        self._stuck: frozenset[int] | None = None

    # -- pipeline-facing hooks ----------------------------------------------

    def effective_config(self, base: DuetConfig) -> DuetConfig:
        """The base config stepped down to the current ladder rung."""
        return stage_config(self.policy.current_stage, base=base)

    def make_dram(self, bandwidth: int) -> Dram:
        """A DRAM interface carrying this campaign's channel faults.

        The channel is backed by a
        :class:`~repro.reliability.faults.DramFaultStream`, so the
        per-event and vectorized-bulk paths draw from the same seeded
        stream and stay bit-identical.
        """
        self._dram = Dram(
            bandwidth,
            fault_stream=self.injector.dram_fault_stream(),
            retry_policy=self.guards.retry_policy,
        )
        self._dram_marks = (0, 0, 0)
        return self._dram

    def process_cnn_workload(self, index: int, workload, cfg: DuetConfig):
        """Fault, guard and audit one CNN-side workload (CONV or FC)."""
        rec = self._start_layer(workload.spec.name, cfg)
        self._account_weights(rec, workload.spec.weight_elements, index)
        true_omap = workload.omap
        rec.total_sensitive = int(np.asarray(true_omap).sum())
        if not cfg.enable_output_switching:
            # accurate-only rung: the Speculator and its maps are out of
            # the loop; every output is computed, nothing can be missed
            return workload
        omap, imap = self._guard_maps(
            index,
            true_omap,
            workload.imap,
            rec,
            imap_consumed=cfg.enable_input_switching,
        )
        cls = FcLayerWorkload if isinstance(workload, FcLayerWorkload) else CnnLayerWorkload
        return cls(workload.spec, omap, imap)

    def process_rnn_workload(
        self, index: int, workload: RnnLayerWorkload, cfg: DuetConfig
    ) -> RnnLayerWorkload:
        """Fault, guard and audit one recurrent layer's sensitive counts."""
        rec = self._start_layer(workload.spec.name, cfg)
        spec = workload.spec
        self._account_weights(rec, spec.weight_elements, index)
        true_counts = workload.sensitive_counts.astype(np.int64)
        rec.total_sensitive = int(true_counts.sum())
        if not cfg.enable_output_switching:
            return workload

        g = self.guards
        guard_band = g.guard_band if g.enabled else 0.0
        # Speculator bias happens before the count words are checksummed
        spec_counts = self.injector.speculate_rnn_counts(
            true_counts, index, guard_band
        )
        sums = row_checksums(spec_counts) if g.enabled else None
        counts = self.injector.corrupt_rnn_counts(
            spec_counts, spec.hidden_size, index
        )
        if g.enabled:
            bad = row_checksums(counts) != sums
            fails = int(bad.sum())
            rec.channels_checked += int(bad.size)
            if fails:
                # a failed time step degrades to dense weight fetch
                counts = np.where(bad[:, None], spec.hidden_size, counts)
                rec.checksum_failures += fails
                rec.repaired_channels += fails
                rec.recovery_actions += fails
            audit = self.auditor.audit_counts(
                true_counts, counts, spec.hidden_size
            )
            rec.audit_samples = audit.samples
            rec.audit_misses = audit.misses
            # weighted as in the CNN path: danger rate over all outputs
            insensitive = float(
                np.clip(spec.hidden_size - counts, 0, None).sum()
            )
            rec.misspeculation_rate = audit.miss_rate * (
                insensitive / (counts.size * spec.hidden_size)
            )
        rec.missed_sensitive = int(np.clip(true_counts - counts, 0, None).sum())
        return RnnLayerWorkload(spec, counts.clip(0, spec.hidden_size))

    def finalize_layer(self, layer_name: str) -> None:
        """Close the layer: fold in DRAM counters, record the account, and
        let the policy pick the next layer's stage."""
        rec = self._pending
        if rec is None or rec.name != layer_name:
            raise RuntimeError(
                f"finalize_layer({layer_name!r}) without matching "
                "process_*_workload call"
            )
        rec.injected = self._injected_since(self._snapshot)
        if self._dram is not None:
            r0, f0, u0 = self._dram_marks
            rec.dram_retries = self._dram.retries - r0
            rec.dram_unrecoverable = self._dram.unrecoverable_transfers - u0
            failed = self._dram.failed_transfers - f0
            if failed:
                rec.injected["dram"] = rec.injected.get("dram", 0) + failed
            self._dram_marks = (
                self._dram.retries,
                self._dram.failed_transfers,
                self._dram.unrecoverable_transfers,
            )
            if rec.dram_unrecoverable:
                if self.guards.enabled:
                    # the guard refuses the delivery: the data is refetched
                    # densely on the spot rather than consumed corrupted
                    rec.recovery_actions += rec.dram_unrecoverable
                else:
                    rec.value_hazards += rec.dram_unrecoverable
        self.layers.append(rec)
        self._pending = None
        self.policy.observe(
            layer_name,
            misspeculation_rate=rec.misspeculation_rate,
            checksum_failures=rec.checksum_failures,
            channels_checked=rec.channels_checked,
            dram_unrecoverable=rec.dram_unrecoverable,
        )

    # -- internals -----------------------------------------------------------

    def _start_layer(self, name: str, cfg: DuetConfig) -> LayerReliability:
        rec = LayerReliability(name=name, stage=self.policy.current_stage)
        self._pending = rec
        self._snapshot = dict(self.injector.injected)
        self._account_stuck_rows(rec, cfg)
        return rec

    def _injected_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        return {
            site: n - snapshot.get(site, 0)
            for site, n in self.injector.injected.items()
            if n - snapshot.get(site, 0)
        }

    def _account_weights(
        self, rec: LayerReliability, weight_elements: int, index: int
    ) -> None:
        """Weight-memory corruption: scrubbed back from the golden copy
        under guards, consumed (= value corruption) without.  Weight faults
        matter at every ladder rung -- the Executor reads them even at
        BASE."""
        count = self.injector.weight_fault_count(weight_elements, index)
        if count:
            if self.guards.enabled:
                rec.recovery_actions += count
            else:
                rec.value_hazards += count

    def _account_stuck_rows(self, rec: LayerReliability, cfg: DuetConfig) -> None:
        """Stuck PE rows: routed around under guards (exact values, fewer
        usable rows), silent channel zeros without.  Silicon faults do not
        move, so the row set is drawn once per run."""
        if self._stuck is None:
            self._stuck = self.injector.stuck_rows(cfg.executor_rows)
        if self._stuck:
            if self.guards.enabled:
                rec.recovery_actions += len(self._stuck)
            else:
                rec.value_hazards += len(self._stuck)

    def _guard_maps(
        self,
        index: int,
        true_omap: np.ndarray,
        true_imap: np.ndarray,
        rec: LayerReliability,
        imap_consumed: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The shared map path: speculate -> checksum -> transport ->
        verify -> audit.  Returns the maps the Executor consumes."""
        g = self.guards
        guard_band = g.guard_band if g.enabled else 0.0

        # the Speculator produces the OMap (bias applies here) and, when
        # guards are on, checksums its own output -- so a biased map
        # passes verification and only the audit can catch it
        spec_omap = self.injector.speculate_omap(true_omap, index, guard_band)
        omap_sums = self.omap_guard.protect(spec_omap) if g.enabled else None
        imap_sums = self.imap_guard.protect(true_imap) if g.enabled else None

        # transport faults while the maps sit in the GLB / cross the NoC
        omap = self.injector.corrupt_omap(spec_omap, index)
        imap = self.injector.corrupt_imap(true_imap, index)

        if g.enabled:
            omap, omap_fails = self.omap_guard.validate(omap, omap_sums)
            imap, imap_fails = self.imap_guard.validate(imap, imap_sums)
            rec.channels_checked += int(omap_sums.size) + int(imap_sums.size)
            rec.checksum_failures += omap_fails + imap_fails
            rec.repaired_channels += omap_fails + imap_fails
            rec.recovery_actions += omap_fails + imap_fails
            audit = self.auditor.audit(true_omap, omap, index)
            rec.audit_samples = audit.samples
            rec.audit_misses = audit.misses
            # policy signal: estimated fraction of ALL outputs dangerously
            # misspeculated.  The raw audit rate is conditional on the
            # insensitive-marked population; unweighted it would read 1.0
            # on a dense layer where the only insensitive marks are the
            # handful of faulty drops the audit then samples.
            rec.misspeculation_rate = audit.miss_rate * float(
                (np.asarray(omap) == 0).mean()
            )

        # quality loss: truly-sensitive outputs the consumed map misses
        rec.missed_sensitive = int(((np.asarray(true_omap) == 1) & (omap == 0)).sum())
        # value hazard: a needed input treated as zero under input
        # switching -- the one map fault that corrupts computed values
        if imap_consumed:
            rec.value_hazards += int(
                ((np.asarray(true_imap) == 1) & (imap == 0)).sum()
            )
        return omap, imap

    # -- results -------------------------------------------------------------

    def summary(self) -> ReliabilityReport:
        """The run's reliability report (attach to the ModelReport)."""
        return ReliabilityReport(
            campaign=self.campaign.name,
            seed=self.seed,
            guards_enabled=self.guards.enabled,
            initial_stage=self.policy.initial_stage,
            final_stage=self.policy.current_stage,
            layers=list(self.layers),
            events=list(self.policy.events),
        )
