"""Programmatic experiment runners for the paper's architecture figures.

The benchmark harness (``benchmarks/``) regenerates every table and
figure; this package is the library API behind the simulator-only ones, so
downstream users can rerun them from Python with custom models, sparsity
statistics, or hardware configurations:

    from repro.experiments import overall_speedup, stage_speedups
    result = overall_speedup(models=("alexnet", "lstm"))
    print(result.geomean_speedup)

Accuracy-dependent experiments (Figs. 2, 10, 13b) involve proxy training
and live in the benchmarks, where their scale is pinned.
"""

from repro.experiments.architecture import (
    area_table,
    energy_breakdowns,
    mac_utilization,
    overall_speedup,
    rnn_memory_latency,
    sota_comparison,
    speculator_size_dse,
    stage_speedups,
)

__all__ = [
    "overall_speedup",
    "sota_comparison",
    "stage_speedups",
    "mac_utilization",
    "rnn_memory_latency",
    "energy_breakdowns",
    "speculator_size_dse",
    "area_table",
]
