"""Simulator-driven experiment runners (Figs. 11-13, Table I).

Each function runs one of the paper's architecture experiments and
returns a typed result object; the benchmarks render and assert on these.
All runners accept the knobs a user would want to vary -- model list,
sparsity statistics, hardware configuration -- and default to the paper's
setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import cnvlutin, eyeriss, predict, predict_cnvlutin, snapea
from repro.models import get_model_spec
from repro.sim import DuetAccelerator
from repro.sim.area import AreaBreakdown, AreaModel
from repro.sim.config import STAGES, DuetConfig, stage_config
from repro.sim.energy import EnergyBreakdown
from repro.workloads import SparsityModel, cnn_workloads, rnn_workloads

__all__ = [
    "OverallResult",
    "SotaResult",
    "StageResult",
    "BreakdownResult",
    "DseResult",
    "AreaResult",
    "overall_speedup",
    "sota_comparison",
    "stage_speedups",
    "mac_utilization",
    "rnn_memory_latency",
    "energy_breakdowns",
    "speculator_size_dse",
    "area_table",
]

#: the paper's full benchmark suite (Fig. 11a).
ALL_MODELS = ("alexnet", "resnet18", "resnet50", "vgg16", "lstm", "gru", "gnmt")
#: the CNN subset used for the Fig. 11b / 12 studies.
CNN_MODELS = ("alexnet", "resnet18", "vgg16")


def _geomean(values) -> float:
    arr = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.mean(np.log(arr))))


def _workloads(spec, sparsity):
    if spec.domain == "cnn":
        return cnn_workloads(spec, sparsity)
    return rnn_workloads(spec, sparsity)


# -- Fig. 11(a) ------------------------------------------------------------------


@dataclass
class OverallResult:
    """Per-model speedup/energy vs the single-module baseline."""

    rows: list[tuple[str, float, float, float, float]]  # name, speedup,
    # energy saving, duet ms, base ms

    @property
    def geomean_speedup(self) -> float:
        """Geometric-mean speedup (paper: 2.24x)."""
        return _geomean(r[1] for r in self.rows)

    @property
    def geomean_energy_saving(self) -> float:
        """Geometric-mean energy saving (paper: 1.95x)."""
        return _geomean(r[2] for r in self.rows)


def overall_speedup(
    models: tuple[str, ...] = ALL_MODELS,
    sparsity: SparsityModel | None = None,
    config: DuetConfig | None = None,
) -> OverallResult:
    """Fig. 11(a): DUET vs single-module across the benchmark suite."""
    sparsity = sparsity if sparsity is not None else SparsityModel()
    rows = []
    for name in models:
        spec = get_model_spec(name)
        wl = _workloads(spec, sparsity)
        duet = DuetAccelerator(
            config=stage_config("DUET", config), sparsity=sparsity
        ).run(spec, workloads=wl)
        base = DuetAccelerator(
            config=stage_config("BASE", config), sparsity=sparsity
        ).run(spec, workloads=wl)
        rows.append(
            (
                name,
                duet.speedup_over(base),
                duet.energy_saving_over(base),
                duet.latency_ms,
                base.latency_ms,
            )
        )
    return OverallResult(rows)


# -- Fig. 11(b) ------------------------------------------------------------------


@dataclass
class SotaResult:
    """Latency/energy/EDP of each comparison design, normalised to DUET."""

    ratios: dict[str, dict[str, float]]  # design -> {latency, energy, edp}


def sota_comparison(
    models: tuple[str, ...] = CNN_MODELS,
    sparsity: SparsityModel | None = None,
    config: DuetConfig | None = None,
) -> SotaResult:
    """Fig. 11(b): DUET vs Eyeriss/Cnvlutin/SnaPEA/Predict(+Cnvlutin)."""
    sparsity = sparsity if sparsity is not None else SparsityModel()
    designs = {
        "eyeriss": eyeriss(),
        "cnvlutin": cnvlutin(),
        "snapea": snapea(),
        "predict": predict(),
        "predict+cnvlutin": predict_cnvlutin(),
    }
    acc: dict[str, dict[str, list[float]]] = {
        k: {"latency": [], "energy": [], "edp": []} for k in designs
    }
    for name in models:
        spec = get_model_spec(name)
        wl = cnn_workloads(spec, sparsity)
        duet = DuetAccelerator(
            config=stage_config("DUET", config), sparsity=sparsity
        ).run(spec, workloads=wl)
        for key, design in designs.items():
            r = design.run(spec, wl)
            acc[key]["latency"].append(r.total_cycles / duet.total_cycles)
            acc[key]["energy"].append(r.energy.total / duet.energy.total)
            acc[key]["edp"].append(r.edp() / duet.edp())
    return SotaResult(
        {k: {m: _geomean(v[m]) for m in v} for k, v in acc.items()}
    )


# -- Fig. 12(a)/(b) ----------------------------------------------------------------


@dataclass
class StageResult:
    """Per-stage layer-wise metric values (speedups or utilisations)."""

    per_stage: dict[str, list[float]]

    def mean(self, stage: str) -> float:
        """Arithmetic mean of the metric for one stage."""
        return float(np.mean(self.per_stage[stage]))


def stage_speedups(
    models: tuple[str, ...] = ("alexnet", "resnet18"),
    sparsity: SparsityModel | None = None,
    skip_first_layer: bool = True,
    config: DuetConfig | None = None,
) -> StageResult:
    """Fig. 12(a): layer-wise OS/BOS/IOS/DUET speedups over BASE.

    Args:
        skip_first_layer: exclude layer 0, which runs dense in every stage
            (no upstream switching map exists for it).
    """
    sparsity = sparsity if sparsity is not None else SparsityModel()
    start = 1 if skip_first_layer else 0
    per_stage: dict[str, list[float]] = {
        s: [] for s in STAGES if s != "BASE"
    }
    for name in models:
        spec = get_model_spec(name)
        wl = cnn_workloads(spec, sparsity)
        reports = {
            stage: DuetAccelerator(
                config=stage_config(stage, config), sparsity=sparsity
            ).run(spec, workloads=wl)
            for stage in STAGES
        }
        base = reports["BASE"]
        for stage in per_stage:
            for base_layer, layer in list(
                zip(base.layers, reports[stage].layers)
            )[start:]:
                per_stage[stage].append(
                    base_layer.total_cycles / layer.total_cycles
                )
    return StageResult(per_stage)


def mac_utilization(
    models: tuple[str, ...] = ("alexnet", "vgg16"),
    sparsity: SparsityModel | None = None,
    skip_first_layer: bool = True,
    config: DuetConfig | None = None,
) -> StageResult:
    """Fig. 12(b): layer-wise Executor MAC utilisation per stage."""
    sparsity = sparsity if sparsity is not None else SparsityModel()
    start = 1 if skip_first_layer else 0
    stages = ("OS", "BOS", "IOS", "DUET")
    per_stage: dict[str, list[float]] = {s: [] for s in stages}
    for name in models:
        spec = get_model_spec(name)
        wl = cnn_workloads(spec, sparsity)
        for stage in stages:
            r = DuetAccelerator(
                config=stage_config(stage, config), sparsity=sparsity
            ).run(spec, workloads=wl)
            per_stage[stage].extend(l.utilization for l in r.layers[start:])
    return StageResult(per_stage)


# -- Fig. 12(d)/(e)/(f) -------------------------------------------------------------


@dataclass
class BreakdownResult:
    """Per-model BASE/DUET latency and energy decompositions."""

    memory_compute: dict[str, tuple[float, float, float, float]] = field(
        default_factory=dict
    )  # model -> (base mem, base cmp, duet mem, duet cmp) in Mcycles
    energy: dict[str, tuple[EnergyBreakdown, EnergyBreakdown]] = field(
        default_factory=dict
    )  # model -> (base, duet)

    def speculator_share(self, model: str) -> float:
        """Speculator fraction of DUET on-chip energy (Fig. 12f)."""
        _, duet = self.energy[model]
        return duet.speculator_total / duet.on_chip


def rnn_memory_latency(
    models: tuple[str, ...] = ("lstm", "gru", "gnmt"),
    sparsity: SparsityModel | None = None,
    config: DuetConfig | None = None,
) -> BreakdownResult:
    """Fig. 12(d): memory vs compute latency, BASE vs DUET."""
    sparsity = sparsity if sparsity is not None else SparsityModel()
    result = BreakdownResult()
    for name in models:
        spec = get_model_spec(name)
        wl = rnn_workloads(spec, sparsity)
        base = DuetAccelerator(
            config=stage_config("BASE", config), sparsity=sparsity
        ).run(spec, workloads=wl)
        duet = DuetAccelerator(
            config=stage_config("DUET", config), sparsity=sparsity
        ).run(spec, workloads=wl)
        result.memory_compute[name] = (
            base.memory_cycles / 1e6,
            base.compute_cycles / 1e6,
            duet.memory_cycles / 1e6,
            duet.compute_cycles / 1e6,
        )
        result.energy[name] = (base.energy, duet.energy)
    return result


def energy_breakdowns(
    models: tuple[str, ...] = ("alexnet", "resnet18", "lstm", "gru"),
    sparsity: SparsityModel | None = None,
    config: DuetConfig | None = None,
) -> BreakdownResult:
    """Fig. 12(e)/(f): component energy for BASE and DUET."""
    sparsity = sparsity if sparsity is not None else SparsityModel()
    result = BreakdownResult()
    for name in models:
        spec = get_model_spec(name)
        base = DuetAccelerator(
            config=stage_config("BASE", config), sparsity=sparsity
        ).run(spec)
        duet = DuetAccelerator(
            config=stage_config("DUET", config), sparsity=sparsity
        ).run(spec)
        result.energy[name] = (base.energy, duet.energy)
    return result


# -- Fig. 13(a) / Table I -----------------------------------------------------------


@dataclass
class DseResult:
    """Speedup per design point."""

    speedups: dict[tuple[int, int], float]

    @property
    def chosen(self) -> tuple[int, int]:
        """The paper's chosen systolic size."""
        return (16, 32)


def speculator_size_dse(
    sizes: tuple[tuple[int, int], ...] = ((8, 8), (8, 16), (16, 16), (16, 32), (32, 32)),
    models: tuple[str, ...] = ("alexnet", "resnet18"),
    sparsity: SparsityModel | None = None,
    config: DuetConfig | None = None,
) -> DseResult:
    """Fig. 13(a): speedup vs Speculator systolic-array size."""
    sparsity = sparsity if sparsity is not None else SparsityModel()
    base_cfg = config if config is not None else DuetConfig()
    speedups = {}
    for rows, cols in sizes:
        cfg = stage_config("DUET", base_cfg.scaled_speculator(rows, cols))
        values = []
        for name in models:
            spec = get_model_spec(name)
            wl = cnn_workloads(spec, sparsity)
            duet = DuetAccelerator(config=cfg, sparsity=sparsity).run(
                spec, workloads=wl
            )
            base = DuetAccelerator(
                config=stage_config("BASE", base_cfg), sparsity=sparsity
            ).run(spec, workloads=wl)
            values.append(duet.speedup_over(base))
        speedups[(rows, cols)] = _geomean(values)
    return DseResult(speedups)


@dataclass
class AreaResult:
    """Table I: the structural area breakdown."""

    breakdown: AreaBreakdown

    @property
    def executor_share(self) -> float:
        """Paper: 40.0%."""
        return self.breakdown.fraction(self.breakdown.executor_total)

    @property
    def speculator_share(self) -> float:
        """Paper: 6.6%."""
        return self.breakdown.fraction(self.breakdown.speculator_total)


def area_table(config: DuetConfig | None = None) -> AreaResult:
    """Table I: component areas for a configuration."""
    return AreaResult(AreaModel(config if config is not None else DuetConfig()).breakdown())
